package trace

// Per-request causal tracing: where Span decomposes one machine flow
// (a syscall, a shootdown) into phases, a request trace decomposes one
// fleet request's whole life — arrival, queueing, placement, boot or
// warm restore, service, storm-induced redo — into Segments that tile
// the request's end-to-end latency exactly. Every segment carries the
// RequestID minted at the DES arrival source and a parent link to its
// causal predecessor, so a tail-latency report can say not just that
// p999 blew up but which concrete request paid for it and where.

import (
	"fmt"
	"strconv"

	"repro/internal/clock"
)

// RequestID is the stable identity of one open-loop request, minted at
// the DES arrival source (MintRequestID) and propagated unchanged
// through admission, queueing, placement, service, eviction, and
// re-placement. Zero means "no request" everywhere an ID can be absent.
type RequestID uint64

// String renders the ID as the fixed-width hex the artifacts and CLIs
// use (ckitrace -request parses it back).
func (id RequestID) String() string {
	return fmt.Sprintf("%016x", uint64(id))
}

// ParseRequestID parses the hex rendering of String.
func ParseRequestID(s string) (RequestID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad request id %q: %w", s, err)
	}
	if v == 0 {
		return 0, fmt.Errorf("trace: request id 0 is reserved")
	}
	return RequestID(v), nil
}

// MintRequestID derives the request ID from the arrival stream's seed
// and the arrival's sequence number — an FNV-64a fold, so the ID is a
// pure function of the stream (byte-identical across runs and host
// parallelism) yet distinct streams do not collide on small sequence
// numbers. Never returns zero.
func MintRequestID(seed uint64, seq int) RequestID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [2]uint64{seed, uint64(int64(seq))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	if h == 0 {
		h = 1
	}
	return RequestID(h)
}

// Segment kinds. Timed kinds (non-zero Dur) tile the request's life
// with no gaps or overlaps, so their durations sum exactly to the
// end-to-end latency; marker kinds are zero-duration lifecycle events.
const (
	// SegArrival is the root marker: the request entered the system.
	SegArrival = "arrival"
	// SegQueue is time spent waiting in a node's start queue.
	SegQueue = "queue"
	// SegPlacement is the scheduler's decision point (instantaneous in
	// the control-plane model): Node is the chosen node, Outcome is
	// "started" or "queued".
	SegPlacement = "placement"
	// SegBoot is a cold container boot that counted toward completion.
	SegBoot = "boot"
	// SegWarmRestore is a warm restore from a snapshot after an
	// eviction.
	SegWarmRestore = "warm_restore"
	// SegForkBoot is a fork-from-snapshot instantiation (the serverless
	// churn arrival mode): COW page sharing instead of a cold boot.
	SegForkBoot = "fork_boot"
	// SegService is service time preserved toward completion.
	SegService = "service"
	// SegStormRedo is run time (boot or service) an eviction threw
	// away — the storm tax paid in redone work.
	SegStormRedo = "storm_redo"
	// SegEvict marks a storm displacement; Outcome is the
	// fleet.EvictOutcome name (warm, cold, requeued).
	SegEvict = "evict"
	// SegReject is the terminal marker of an admission rejection.
	SegReject = "reject"
	// SegComplete is the terminal marker of a completion.
	SegComplete = "complete"
)

// Segment is one closed piece of a request's life. ID and Parent index
// into the request's own segment list (Parent -1 = root); because a
// request's lifecycle is causal, the parent of each segment is simply
// the segment recorded before it, forming a chain from arrival to the
// terminal marker.
type Segment struct {
	Req     RequestID  `json:"req"`
	ID      int        `json:"id"`
	Parent  int        `json:"parent"`
	Kind    string     `json:"kind"`
	At      clock.Time `json:"at"`
	Dur     clock.Time `json:"dur"`
	Node    int        `json:"node,omitempty"`
	Outcome string     `json:"outcome,omitempty"`
}

// Terminal reports whether the segment ends the request's life.
func (s Segment) Terminal() bool {
	return s.Kind == SegComplete || s.Kind == SegReject
}

// Timed reports whether the segment consumes request latency (its Dur
// participates in the conservation law).
func (s Segment) Timed() bool {
	switch s.Kind {
	case SegQueue, SegBoot, SegWarmRestore, SegForkBoot, SegService, SegStormRedo:
		return true
	}
	return false
}

// requestLog is one request's segments in causal (recording) order.
type requestLog struct {
	id   RequestID
	segs []Segment
}

// RequestRecorder collects per-request lifecycle segments. A nil
// *RequestRecorder is a valid no-op recorder, and no method ever reads
// or advances a clock — timestamps come from the caller's virtual
// timeline — so attaching one never changes what it observes.
type RequestRecorder struct {
	byReq map[RequestID]int
	reqs  []requestLog
}

// NewRequestRecorder creates an empty recorder.
func NewRequestRecorder() *RequestRecorder {
	return &RequestRecorder{byReq: map[RequestID]int{}}
}

// Emit appends one segment to req's trace and returns its index within
// the request. The parent link is the request's previously recorded
// segment (-1 for the first), which is exactly the causal predecessor
// for a sequential lifecycle. On a nil recorder it returns -1.
func (r *RequestRecorder) Emit(req RequestID, kind string, at, dur clock.Time, node int, outcome string) int {
	if r == nil {
		return -1
	}
	li, ok := r.byReq[req]
	if !ok {
		li = len(r.reqs)
		r.byReq[req] = li
		r.reqs = append(r.reqs, requestLog{id: req})
	}
	l := &r.reqs[li]
	id := len(l.segs)
	l.segs = append(l.segs, Segment{
		Req: req, ID: id, Parent: id - 1,
		Kind: kind, At: at, Dur: dur, Node: node, Outcome: outcome,
	})
	return id
}

// Requests returns every traced RequestID in first-seen order (a
// copy) — deterministic for a deterministic workload.
func (r *RequestRecorder) Requests() []RequestID {
	if r == nil {
		return nil
	}
	out := make([]RequestID, len(r.reqs))
	for i := range r.reqs {
		out[i] = r.reqs[i].id
	}
	return out
}

// Segments returns req's segments in causal order (a copy), nil when
// the request was never seen.
func (r *RequestRecorder) Segments(req RequestID) []Segment {
	if r == nil {
		return nil
	}
	li, ok := r.byReq[req]
	if !ok {
		return nil
	}
	return append([]Segment(nil), r.reqs[li].segs...)
}

// Len reports the number of traced requests.
func (r *RequestRecorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.reqs)
}

// TerminalOf returns the request's terminal segment and true when the
// trace holds exactly one terminal (the well-formedness the fleet's
// generation counters guarantee: a stale completion after re-placement
// must not double-terminate).
func (r *RequestRecorder) TerminalOf(req RequestID) (Segment, bool) {
	var term Segment
	n := 0
	for _, s := range r.Segments(req) {
		if s.Terminal() {
			term = s
			n++
		}
	}
	return term, n == 1
}

// Conserve checks the conservation law on one request's segments: the
// timed segments must tile [arrival, terminal] back to back — each
// starting where its predecessor ended, summing exactly to the
// end-to-end latency. It returns the latency on success and an error
// naming the first violation otherwise. Rejected requests conserve
// trivially (zero latency, no timed segments after the reject).
func Conserve(segs []Segment) (clock.Time, error) {
	if len(segs) == 0 {
		return 0, fmt.Errorf("trace: empty request trace")
	}
	if segs[0].Kind != SegArrival {
		return 0, fmt.Errorf("trace: request %s: first segment is %q, not arrival", segs[0].Req, segs[0].Kind)
	}
	var term *Segment
	cursor := segs[0].At
	var sum clock.Time
	for i := range segs {
		s := &segs[i]
		if s.Parent != i-1 {
			return 0, fmt.Errorf("trace: request %s: segment %d parent %d breaks the causal chain", s.Req, s.ID, s.Parent)
		}
		if s.Terminal() {
			if term != nil {
				return 0, fmt.Errorf("trace: request %s: two terminal segments (%s at %v, %s at %v)",
					s.Req, term.Kind, term.At, s.Kind, s.At)
			}
			term = s
		}
		if !s.Timed() {
			continue
		}
		if s.At != cursor {
			return 0, fmt.Errorf("trace: request %s: %s segment starts at %v, previous work ended at %v",
				s.Req, s.Kind, s.At, cursor)
		}
		cursor = s.At + s.Dur
		sum += s.Dur
	}
	if term == nil {
		return 0, fmt.Errorf("trace: request %s: no terminal segment", segs[0].Req)
	}
	if term.Kind == SegComplete {
		if lat := term.At - segs[0].At; lat != sum {
			return 0, fmt.Errorf("trace: request %s: segments sum to %v, end-to-end latency is %v",
				segs[0].Req, sum, lat)
		}
		if term.At != cursor {
			return 0, fmt.Errorf("trace: request %s: completion at %v but last work ended at %v",
				segs[0].Req, term.At, cursor)
		}
	}
	return sum, nil
}
