package trace

import (
	"testing"

	"repro/internal/clock"
)

// TestNilObserverSpanAllocs pins the disabled-tracing path at zero
// allocations: with no recorder attached, every Phase call in the guest
// and engine costs a nil check and nothing else.
func TestNilObserverSpanAllocs(t *testing.T) {
	var r *SpanRecorder
	if n := testing.AllocsPerRun(1000, func() {
		id := r.Begin("syscall")
		r.End(id)
		r.EmitAt("shootdown_remote", 0, 0, 1, id)
	}); n != 0 {
		t.Errorf("nil-observer Begin/End/EmitAt allocs/op = %v, want 0", n)
	}
}

// TestObservedSpanAllocsSteadyState pins the enabled-tracing path at
// zero allocations once the span buffer is reserved: phase labels are
// interned string constants, so recording a span is two appends into
// pre-sized buffers.
func TestObservedSpanAllocsSteadyState(t *testing.T) {
	clk := new(clock.Clock)
	r := NewSpanRecorder(clk)
	r.Reserve(4096)
	// Warm the stack slice too.
	for i := 0; i < 8; i++ {
		r.End(r.Begin("warm"))
	}
	if n := testing.AllocsPerRun(1000, func() {
		id := r.Begin("syscall")
		clk.Advance(100)
		r.End(id)
	}); n != 0 {
		t.Errorf("observed Begin/End allocs/op = %v, want 0", n)
	}
}

// BenchmarkSpanEmission measures span recording with and without an
// attached recorder — the per-phase cost of the observability layer.
func BenchmarkSpanEmission(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var r *SpanRecorder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := r.Begin("syscall")
			r.End(id)
		}
	})
	b.Run("observed", func(b *testing.B) {
		clk := new(clock.Clock)
		r := NewSpanRecorder(clk)
		r.Reserve(b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := r.Begin("syscall")
			r.End(id)
		}
	})
}
