package trace

import (
	"testing"

	"repro/internal/clock"
)

func TestMintRequestID(t *testing.T) {
	seen := map[RequestID]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		for seq := 0; seq < 1000; seq++ {
			id := MintRequestID(seed, seq)
			if id == 0 {
				t.Fatalf("MintRequestID(%d, %d) = 0; zero is reserved", seed, seq)
			}
			if seen[id] {
				t.Fatalf("MintRequestID(%d, %d) = %s collides within a small window", seed, seq, id)
			}
			seen[id] = true
		}
	}
	if a, b := MintRequestID(7, 42), MintRequestID(7, 42); a != b {
		t.Fatalf("MintRequestID not deterministic: %s vs %s", a, b)
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	id := MintRequestID(0xf1ee7, 99)
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("String() = %q, want 16 hex chars", s)
	}
	back, err := ParseRequestID(s)
	if err != nil {
		t.Fatalf("ParseRequestID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: %s -> %q -> %s", id, s, back)
	}
	if _, err := ParseRequestID("not-hex"); err == nil {
		t.Fatal("ParseRequestID accepted garbage")
	}
	if _, err := ParseRequestID("0"); err == nil {
		t.Fatal("ParseRequestID accepted the reserved zero id")
	}
}

func TestNilRequestRecorder(t *testing.T) {
	var r *RequestRecorder
	if got := r.Emit(1, SegArrival, 0, 0, 0, ""); got != -1 {
		t.Fatalf("nil Emit = %d, want -1", got)
	}
	if r.Requests() != nil || r.Segments(1) != nil || r.Len() != 0 {
		t.Fatal("nil recorder must be an empty no-op")
	}
}

func TestRecorderChaining(t *testing.T) {
	r := NewRequestRecorder()
	id := MintRequestID(1, 0)
	other := MintRequestID(1, 1)

	r.Emit(id, SegArrival, 100, 0, 0, "")
	r.Emit(other, SegArrival, 150, 0, 0, "")
	r.Emit(id, SegPlacement, 100, 0, 3, "queued")
	r.Emit(id, SegQueue, 100, 50, 3, "")
	r.Emit(other, SegReject, 150, 0, 0, "")
	r.Emit(id, SegBoot, 150, 30, 3, "")
	r.Emit(id, SegService, 180, 20, 3, "")
	r.Emit(id, SegComplete, 200, 0, 3, "")

	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
	reqs := r.Requests()
	if len(reqs) != 2 || reqs[0] != id || reqs[1] != other {
		t.Fatalf("Requests() = %v, want first-seen order [%s %s]", reqs, id, other)
	}

	segs := r.Segments(id)
	if len(segs) != 6 {
		t.Fatalf("Segments(id) = %d segments, want 6", len(segs))
	}
	for i, s := range segs {
		if s.ID != i || s.Parent != i-1 {
			t.Fatalf("segment %d: ID=%d Parent=%d, want chain", i, s.ID, s.Parent)
		}
		if s.Req != id {
			t.Fatalf("segment %d carries req %s, want %s", i, s.Req, id)
		}
	}
	// Interleaved requests must not cross-link.
	osegs := r.Segments(other)
	if len(osegs) != 2 || osegs[1].Kind != SegReject || osegs[1].Parent != 0 {
		t.Fatalf("other request corrupted by interleaving: %+v", osegs)
	}

	if term, ok := r.TerminalOf(id); !ok || term.Kind != SegComplete {
		t.Fatalf("TerminalOf(id) = %+v, %v", term, ok)
	}

	// Segments returns a copy.
	segs[0].Kind = "mutated"
	if r.Segments(id)[0].Kind != SegArrival {
		t.Fatal("Segments leaked internal storage")
	}
}

func TestConserve(t *testing.T) {
	id := MintRequestID(2, 0)
	mk := func(kind string, at, dur clock.Time) Segment {
		return Segment{Req: id, Kind: kind, At: at, Dur: dur}
	}
	chain := func(segs ...Segment) []Segment {
		for i := range segs {
			segs[i].ID = i
			segs[i].Parent = i - 1
		}
		return segs
	}

	good := chain(
		mk(SegArrival, 100, 0),
		mk(SegQueue, 100, 40),
		mk(SegBoot, 140, 30),
		mk(SegStormRedo, 170, 10),
		mk(SegWarmRestore, 180, 5),
		mk(SegService, 185, 15),
		mk(SegComplete, 200, 0),
	)
	lat, err := Conserve(good)
	if err != nil {
		t.Fatalf("Conserve(good): %v", err)
	}
	if lat != 100 {
		t.Fatalf("Conserve(good) = %v, want 100", lat)
	}

	rejected := chain(mk(SegArrival, 50, 0), mk(SegReject, 50, 0))
	if lat, err := Conserve(rejected); err != nil || lat != 0 {
		t.Fatalf("Conserve(rejected) = %v, %v; want 0, nil", lat, err)
	}

	bad := []struct {
		name string
		segs []Segment
	}{
		{"empty", nil},
		{"no arrival", chain(mk(SegQueue, 0, 10), mk(SegComplete, 10, 0))},
		{"gap", chain(mk(SegArrival, 0, 0), mk(SegQueue, 0, 10), mk(SegService, 15, 5), mk(SegComplete, 20, 0))},
		{"overlap", chain(mk(SegArrival, 0, 0), mk(SegBoot, 0, 10), mk(SegService, 5, 15), mk(SegComplete, 20, 0))},
		{"latency mismatch", chain(mk(SegArrival, 0, 0), mk(SegService, 0, 10), mk(SegComplete, 25, 0))},
		{"no terminal", chain(mk(SegArrival, 0, 0), mk(SegService, 0, 10))},
		{"double terminal", chain(mk(SegArrival, 0, 0), mk(SegService, 0, 10), mk(SegComplete, 10, 0), mk(SegComplete, 10, 0))},
		{"broken chain", []Segment{
			{Req: id, ID: 0, Parent: -1, Kind: SegArrival},
			{Req: id, ID: 1, Parent: 1, Kind: SegComplete},
		}},
	}
	for _, tc := range bad {
		if _, err := Conserve(tc.segs); err == nil {
			t.Errorf("Conserve(%s): want error, got nil", tc.name)
		}
	}
}
