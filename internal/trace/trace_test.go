package trace_test

import (
	"strings"
	"testing"

	"repro/internal/backends"
	"repro/internal/clock"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/trace"
)

func TestRingBounds(t *testing.T) {
	r := trace.New(4)
	for i := 0; i < 10; i++ {
		r.Record(trace.Event{At: clock.Time(i), Kind: trace.Syscall})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	// Oldest first, last four survive.
	for i, e := range evs {
		if e.At != clock.Time(6+i) {
			t.Errorf("event %d At = %d, want %d", i, e.At, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestNilRingIsNoOp(t *testing.T) {
	var r *trace.Ring
	r.Record(trace.Event{}) // must not panic
	if r.Events() != nil || r.Dropped() != 0 {
		t.Error("nil ring returned data")
	}
}

func TestGuestFlowsRecorded(t *testing.T) {
	c := backends.MustNew(backends.CKI, backends.Options{})
	c.K.Trace = trace.New(512)
	k := c.K
	k.Getpid()
	addr, err := k.MmapCall(4*mem.PageSize, guest.ProtRead|guest.ProtWrite, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.TouchRange(addr, 4*mem.PageSize, mmu.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Fork(); err != nil {
		t.Fatal(err)
	}
	if err := k.Yield(); err != nil {
		t.Fatal(err)
	}
	sum := c.K.Trace.Summary()
	if sum[trace.Syscall].Count < 4 {
		t.Errorf("syscalls recorded = %d, want >= 4", sum[trace.Syscall].Count)
	}
	if sum[trace.PageFault].Count != 4 {
		t.Errorf("pagefaults recorded = %d, want 4", sum[trace.PageFault].Count)
	}
	if sum[trace.CtxSwitch].Count == 0 {
		t.Error("no context switch recorded")
	}
	// Durations are positive and the syscall total is plausible
	// (getpid ≈ 90ns each at minimum).
	if sum[trace.Syscall].Total < 90*clock.Nanosecond {
		t.Errorf("syscall total %v too small", sum[trace.Syscall].Total)
	}
	out := c.K.Trace.Render(10)
	for _, want := range []string{"flow timeline", "pagefault", "syscall"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTimelineOrdered(t *testing.T) {
	c := backends.MustNew(backends.RunC, backends.Options{})
	c.K.Trace = trace.New(128)
	for i := 0; i < 20; i++ {
		c.K.Getpid()
	}
	var last clock.Time
	for i, e := range c.K.Trace.Events() {
		if e.At < last {
			t.Fatalf("event %d out of order: %v < %v", i, e.At, last)
		}
		last = e.At
	}
}
