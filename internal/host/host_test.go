package host

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
)

func newHost(t *testing.T) (*Kernel, *clock.Clock) {
	t.Helper()
	k, err := New(mem.New(1024), clock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return k, new(clock.Clock)
}

func TestHypercallDispatch(t *testing.T) {
	k, clk := newHost(t)
	cases := []struct {
		nr    int
		args  []uint64
		check func() bool
	}{
		{HcConsole, []uint64{1}, func() bool { return k.Stats.Consoles == 1 }},
		{HcPause, nil, func() bool { return k.Stats.Pauses == 1 }},
		{HcSetTimer, []uint64{100}, func() bool { return k.Stats.TimerSets == 1 }},
		{HcSendIPI, []uint64{2}, func() bool { return k.Stats.IPIs == 1 }},
		{HcVirtioKick, []uint64{0}, func() bool { return k.Stats.VirtioKicks == 1 }},
		{HcYield, nil, func() bool { return true }},
	}
	for _, c := range cases {
		before := clk.Now()
		if _, err := k.Hypercall(clk, c.nr, c.args...); err != nil {
			t.Fatalf("hypercall %d: %v", c.nr, err)
		}
		if !c.check() {
			t.Errorf("hypercall %d not recorded", c.nr)
		}
		if clk.Now() == before {
			t.Errorf("hypercall %d charged nothing", c.nr)
		}
	}
	if k.Stats.Hypercalls != uint64(len(cases)) {
		t.Errorf("total hypercalls = %d, want %d", k.Stats.Hypercalls, len(cases))
	}
	if _, err := k.Hypercall(clk, 999); err == nil {
		t.Error("unknown hypercall succeeded")
	}
}

func TestMemExtend(t *testing.T) {
	k, clk := newHost(t)
	base, err := k.Hypercall(clk, HcMemExtend, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	seg := mem.Segment{Base: mem.PFN(base), Frames: 64}
	for p := seg.Base; p < seg.End(); p++ {
		if k.Mem.Owner(p) != 7 {
			t.Fatalf("frame %d owner = %d, want 7", p, k.Mem.Owner(p))
		}
	}
	if _, err := k.Hypercall(clk, HcMemExtend, 64); err == nil {
		t.Error("malformed HcMemExtend succeeded")
	}
}

func TestDelegateSegment(t *testing.T) {
	k, _ := newHost(t)
	s1, err := k.DelegateSegment(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := k.DelegateSegment(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Contains(s2.Base) || s2.Contains(s1.Base) {
		t.Error("delegated segments overlap")
	}
}

func TestHandleIRQCharges(t *testing.T) {
	k, clk := newHost(t)
	k.HandleIRQ(clk, 33)
	if k.Stats.IRQs != 1 {
		t.Error("IRQ not counted")
	}
	if clk.Now() != k.Costs.IRQHostWork {
		t.Errorf("IRQ charged %v, want %v", clk.Now(), k.Costs.IRQHostWork)
	}
}
