// Package host implements the host kernel (hypervisor side) of the
// simulated machine: physical-memory provisioning for containers,
// hypercall dispatch, hardware-interrupt handling, and the virtio device
// backends. In a nested cloud this code plays the role of the L1 kernel;
// the extra L0 round trips of nested HVM are charged by the HVM backend,
// not here, because CKI and PVM exits never reach L0 (§3.3).
package host

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/virtio"
)

// Stats counts host-kernel events.
type Stats struct {
	Hypercalls  uint64
	IRQs        uint64
	Consoles    uint64
	Pauses      uint64
	TimerSets   uint64
	IPIs        uint64
	VirtioKicks uint64
}

// Kernel is the host kernel of one simulated machine.
type Kernel struct {
	Mem   *mem.PhysMem
	Costs *clock.Costs
	// Root is the host's own page-table root (PCID 0). Its contents are
	// minimal: the host's flows never fault in the simulation.
	Root mem.PFN

	queues  map[uint64]*virtio.Queue
	console []string

	// Inj, when non-nil, can fail hypercall dispatch with a transient
	// ErrHypercallFault (faults.Hypercall).
	Inj faults.Injector

	// IPISink, when non-nil, receives every per-target IPI of an
	// HcSendIPI fan-out (the SMP engine installs it to post VectorIPI
	// into the target vCPU's pending queue).
	IPISink func(target, vector int)

	Stats Stats
}

// ErrHypercallFault is the transient failure injected at the hypercall
// dispatch site.
var ErrHypercallFault = errors.New("host: transient hypercall failure (injected)")

// New creates a host kernel over m.
func New(m *mem.PhysMem, costs *clock.Costs) (*Kernel, error) {
	root, err := m.Alloc(mem.NoOwner)
	if err != nil {
		return nil, fmt.Errorf("host: allocating root: %w", err)
	}
	return &Kernel{
		Mem:    m,
		Costs:  costs,
		Root:   root,
		queues: make(map[uint64]*virtio.Queue),
	}, nil
}

// DelegateSegment provisions a contiguous physical segment to container
// owner — the hPA delegation CKI's guest memory managers run on (§4.3).
func (k *Kernel) DelegateSegment(frames, owner int) (mem.Segment, error) {
	return k.Mem.AllocSegment(frames, owner)
}

// RegisterQueue attaches a virtqueue under a device id so kicks can
// reach it.
func (k *Kernel) RegisterQueue(id uint64, q *virtio.Queue) { k.queues[id] = q }

// Queue returns a registered virtqueue.
func (k *Kernel) Queue(id uint64) *virtio.Queue { return k.queues[id] }

// Console returns the accumulated console output.
func (k *Kernel) Console() []string { return k.console }

// Hypercall numbers handled here mirror guest.Hc*. The dispatch cost is
// charged by the runtime's gate; this method charges only per-request
// body work.
const (
	HcConsole    = 1
	HcPause      = 2
	HcSetTimer   = 3
	HcSendIPI    = 4
	HcVirtioKick = 5
	HcMemExtend  = 6
	HcYield      = 7
)

// hypercall body costs (host kernel software).
var (
	bodyConsole = clock.FromNanos(180)
	bodyPause   = clock.FromNanos(220)
	bodyTimer   = clock.FromNanos(90)
	bodyIPI     = clock.FromNanos(140)
	bodyKick    = clock.FromNanos(120)
	bodyExtend  = clock.FromNanos(700)
)

// Hypercall services a guest request. The args convention per call is
// documented at each case.
func (k *Kernel) Hypercall(clk *clock.Clock, nr int, args ...uint64) (uint64, error) {
	k.Stats.Hypercalls++
	if k.Inj != nil && k.Inj.Fire(faults.Hypercall) {
		return 0, ErrHypercallFault
	}
	switch nr {
	case HcConsole:
		clk.Advance(bodyConsole)
		k.Stats.Consoles++
		k.console = append(k.console, fmt.Sprintf("hc-console(%v)", args))
		return 0, nil
	case HcPause:
		clk.Advance(bodyPause)
		k.Stats.Pauses++
		return 0, nil
	case HcSetTimer:
		clk.Advance(bodyTimer)
		k.Stats.TimerSets++
		return 0, nil
	case HcSendIPI:
		// args convention: (targetMask, vector). The host validates and
		// fans the IPI out core by core, charging the APIC programming
		// per target; legacy single-target callers pass no args.
		if len(args) >= 2 && args[0] != 0 {
			mask, vector := args[0], int(args[1])
			for t := 0; mask != 0; t, mask = t+1, mask>>1 {
				if mask&1 == 0 {
					continue
				}
				clk.Advance(bodyIPI)
				k.Stats.IPIs++
				if k.IPISink != nil {
					k.IPISink(t, vector)
				}
			}
			return 0, nil
		}
		clk.Advance(bodyIPI)
		k.Stats.IPIs++
		return 0, nil
	case HcVirtioKick:
		clk.Advance(bodyKick)
		k.Stats.VirtioKicks++
		// The queue drain itself is driven by the caller (the virtqueue
		// wrapper) so the device can run in guest-visible memory.
		return 0, nil
	case HcMemExtend:
		clk.Advance(bodyExtend)
		if len(args) != 2 {
			return 0, fmt.Errorf("host: HcMemExtend wants (frames, owner)")
		}
		seg, err := k.Mem.AllocSegment(int(args[0]), int(args[1]))
		if err != nil {
			return 0, err
		}
		return uint64(seg.Base), nil
	case HcYield:
		clk.Advance(bodyTimer)
		return 0, nil
	default:
		return 0, fmt.Errorf("host: unknown hypercall %d", nr)
	}
}

// HandleIRQ performs the host's generic hardware-interrupt bookkeeping.
func (k *Kernel) HandleIRQ(clk *clock.Clock, vector int) {
	k.Stats.IRQs++
	clk.Advance(k.Costs.IRQHostWork)
}
