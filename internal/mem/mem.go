// Package mem models the physical memory of the simulated machine.
//
// Physical memory is an array of 4 KiB frames. Frame contents (512
// 64-bit words) are allocated lazily, so a simulated machine can expose
// many gigabytes of physical address space while only frames that are
// actually written — page tables, file data, device rings — consume host
// memory. Workload data pages that are merely touched never materialize.
//
// Two allocators are provided, mirroring the paper's memory-provisioning
// split: a free-list frame allocator used by kernels for page tables and
// kernel objects, and a contiguous segment allocator used by the CKI host
// kernel to delegate physical-address ranges to guest kernels (§3.3:
// "The host kernel provides each guest VM with some contiguous segments
// of hPA that are directly managed by the memory manager in the guest").
package mem

import (
	"errors"
	"fmt"

	"repro/internal/faults"
)

// Page geometry of the simulated machine (x86-64, 4-level paging).
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1
	// WordsPerPage is the number of 64-bit words in one frame; a
	// page-table page holds this many entries.
	WordsPerPage = PageSize / 8 // 512
	// HugePageSize is the 2 MiB mapping granule used by the hugepage
	// experiments (Fig. 12 "2M" bars, Table 4).
	HugePageSize = 2 << 20
)

// PFN is a physical frame number.
type PFN uint64

// Addr returns the physical byte address of the start of the frame.
func (p PFN) Addr() uint64 { return uint64(p) << PageShift }

// PFNOf returns the frame containing physical address pa.
func PFNOf(pa uint64) PFN { return PFN(pa >> PageShift) }

// NoOwner marks an unowned frame.
const NoOwner = -1

// Page is the lazily-materialized contents of one frame.
type Page [WordsPerPage]uint64

// Segment is a contiguous physical range delegated to one guest kernel.
type Segment struct {
	Base   PFN
	Frames int
}

// Contains reports whether pfn falls inside the segment.
func (s Segment) Contains(pfn PFN) bool {
	return pfn >= s.Base && pfn < s.Base+PFN(s.Frames)
}

// End returns the first frame past the segment.
func (s Segment) End() PFN { return s.Base + PFN(s.Frames) }

// Errors returned by the allocators.
var (
	ErrOutOfMemory  = errors.New("mem: out of physical memory")
	ErrFragmented   = errors.New("mem: no contiguous run large enough")
	ErrDoubleFree   = errors.New("mem: frame already free")
	ErrOutOfRange   = errors.New("mem: frame out of range")
	ErrNotAllocated = errors.New("mem: frame not allocated")
)

// PhysMem is the physical memory of one simulated machine. It is not
// safe for concurrent use; the simulator is single-threaded per machine.
type PhysMem struct {
	frames    int
	pages     map[PFN]*Page
	allocated []bool
	owner     []int32
	// nextFree is a rotating scan cursor for single-frame allocation.
	nextFree PFN
	// segCursor is a bump cursor for contiguous segment allocation; the
	// segment region grows from the top of memory downward so single
	// frames and segments rarely collide.
	segCursor PFN
	inUse     int

	// Inj, when non-nil, can fail single-frame allocations
	// (faults.HostAlloc) — machine-wide memory pressure.
	Inj faults.Injector
}

// New creates a physical memory of the given number of 4 KiB frames.
// Frame 0 is reserved (a zero PFN in a PTE means "not present" in the
// paging model), matching real kernels that avoid handing out page 0.
func New(frames int) *PhysMem {
	if frames < 2 {
		panic("mem: need at least 2 frames")
	}
	m := &PhysMem{
		frames:    frames,
		pages:     make(map[PFN]*Page),
		allocated: make([]bool, frames),
		owner:     make([]int32, frames),
		nextFree:  1,
		segCursor: PFN(frames),
	}
	for i := range m.owner {
		m.owner[i] = NoOwner
	}
	m.allocated[0] = true // reserve frame 0
	return m
}

// Frames returns the total number of frames.
func (m *PhysMem) Frames() int { return m.frames }

// InUse returns the number of allocated frames (excluding reserved 0).
func (m *PhysMem) InUse() int { return m.inUse }

// Alloc allocates one frame and assigns it to owner.
func (m *PhysMem) Alloc(owner int) (PFN, error) {
	if m.Inj != nil && m.Inj.Fire(faults.HostAlloc) {
		return 0, ErrOutOfMemory
	}
	for scanned := 0; scanned < m.frames; scanned++ {
		p := m.nextFree
		m.nextFree++
		if m.nextFree >= PFN(m.frames) {
			m.nextFree = 1
		}
		if p >= m.segCursor { // inside the segment region
			continue
		}
		if !m.allocated[p] {
			m.allocated[p] = true
			m.owner[p] = int32(owner)
			m.inUse++
			return p, nil
		}
	}
	return 0, ErrOutOfMemory
}

// AllocSegment allocates n physically contiguous frames for owner. CKI
// uses this to delegate hPA ranges to guest kernels.
func (m *PhysMem) AllocSegment(n, owner int) (Segment, error) {
	if n <= 0 {
		return Segment{}, fmt.Errorf("mem: bad segment size %d", n)
	}
	if m.segCursor < PFN(n)+1 {
		return Segment{}, ErrFragmented
	}
	base := m.segCursor - PFN(n)
	// Ensure the run is genuinely free (the single-frame allocator never
	// strays above segCursor, but a prior Free could have been misused).
	for p := base; p < m.segCursor; p++ {
		if m.allocated[p] {
			return Segment{}, ErrFragmented
		}
	}
	for p := base; p < m.segCursor; p++ {
		m.allocated[p] = true
		m.owner[p] = int32(owner)
	}
	m.inUse += n
	m.segCursor = base
	return Segment{Base: base, Frames: n}, nil
}

// Free releases a single frame.
func (m *PhysMem) Free(p PFN) error {
	if p == 0 || p >= PFN(m.frames) {
		return ErrOutOfRange
	}
	if !m.allocated[p] {
		return ErrDoubleFree
	}
	m.allocated[p] = false
	m.owner[p] = NoOwner
	delete(m.pages, p)
	m.inUse--
	return nil
}

// FreeOwned releases every frame tagged with owner back to the
// allocator — the host reclaiming a dead container's memory before
// booting its replacement. Segment frames freed at the bottom of the
// segment region move segCursor back up, so repeated crash/restart
// cycles do not exhaust the contiguous-delegation space.
func (m *PhysMem) FreeOwned(owner int) int {
	n := 0
	for p := PFN(1); p < PFN(m.frames); p++ {
		if m.allocated[p] && int(m.owner[p]) == owner {
			m.allocated[p] = false
			m.owner[p] = NoOwner
			delete(m.pages, p)
			m.inUse--
			n++
		}
	}
	for m.segCursor < PFN(m.frames) && !m.allocated[m.segCursor] {
		m.segCursor++
	}
	return n
}

// Owner returns the owner tag of a frame, or NoOwner.
func (m *PhysMem) Owner(p PFN) int {
	if p >= PFN(m.frames) {
		return NoOwner
	}
	return int(m.owner[p])
}

// Allocated reports whether frame p is currently allocated.
func (m *PhysMem) Allocated(p PFN) bool {
	return p < PFN(m.frames) && m.allocated[p]
}

// Page returns the backing contents of frame p, materializing them on
// first use. Reading a never-written frame observes zeros, like real
// zeroed physical memory.
func (m *PhysMem) Page(p PFN) *Page {
	if p >= PFN(m.frames) {
		panic(fmt.Sprintf("mem: PFN %#x out of range", uint64(p)))
	}
	pg := m.pages[p]
	if pg == nil {
		pg = new(Page)
		m.pages[p] = pg
	}
	return pg
}

// ReadWord reads the 64-bit word at physical address pa (must be 8-byte
// aligned).
func (m *PhysMem) ReadWord(pa uint64) uint64 {
	pfn := PFNOf(pa)
	if pfn >= PFN(m.frames) {
		panic(fmt.Sprintf("mem: physical read at %#x out of range", pa))
	}
	pg := m.pages[pfn]
	if pg == nil {
		return 0
	}
	return pg[(pa&PageMask)/8]
}

// WriteWord writes the 64-bit word at physical address pa.
func (m *PhysMem) WriteWord(pa uint64, v uint64) {
	m.Page(PFNOf(pa))[(pa&PageMask)/8] = v
}
