package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocFree(t *testing.T) {
	m := New(64)
	p, err := m.Alloc(7)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if p == 0 {
		t.Fatal("Alloc returned reserved frame 0")
	}
	if got := m.Owner(p); got != 7 {
		t.Errorf("Owner = %d, want 7", got)
	}
	if !m.Allocated(p) {
		t.Error("Allocated = false after Alloc")
	}
	if err := m.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if m.Allocated(p) {
		t.Error("Allocated = true after Free")
	}
	if err := m.Free(p); err != ErrDoubleFree {
		t.Errorf("double Free err = %v, want ErrDoubleFree", err)
	}
	if err := m.Free(0); err != ErrOutOfRange {
		t.Errorf("Free(0) err = %v, want ErrOutOfRange", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(8)
	var got []PFN
	for {
		p, err := m.Alloc(1)
		if err != nil {
			if err != ErrOutOfMemory {
				t.Fatalf("err = %v, want ErrOutOfMemory", err)
			}
			break
		}
		got = append(got, p)
	}
	if len(got) != 7 { // 8 frames minus reserved frame 0
		t.Errorf("allocated %d frames, want 7", len(got))
	}
	seen := map[PFN]bool{}
	for _, p := range got {
		if seen[p] {
			t.Errorf("frame %d allocated twice", p)
		}
		seen[p] = true
	}
}

func TestAllocSegmentContiguity(t *testing.T) {
	m := New(256)
	s1, err := m.AllocSegment(32, 1)
	if err != nil {
		t.Fatalf("AllocSegment: %v", err)
	}
	if s1.Frames != 32 {
		t.Errorf("Frames = %d, want 32", s1.Frames)
	}
	s2, err := m.AllocSegment(16, 2)
	if err != nil {
		t.Fatalf("AllocSegment 2: %v", err)
	}
	if s2.End() != s1.Base {
		t.Errorf("segments not adjacent: s2 ends at %d, s1 starts at %d", s2.End(), s1.Base)
	}
	for p := s1.Base; p < s1.End(); p++ {
		if m.Owner(p) != 1 {
			t.Fatalf("frame %d owner = %d, want 1", p, m.Owner(p))
		}
	}
	if !s1.Contains(s1.Base) || s1.Contains(s1.End()) {
		t.Error("Contains boundary conditions wrong")
	}
}

func TestAllocSegmentTooLarge(t *testing.T) {
	m := New(64)
	if _, err := m.AllocSegment(64, 1); err != ErrFragmented {
		t.Errorf("err = %v, want ErrFragmented", err)
	}
	if _, err := m.AllocSegment(0, 1); err == nil {
		t.Error("AllocSegment(0) succeeded, want error")
	}
}

func TestSegmentsAndFramesDisjoint(t *testing.T) {
	m := New(128)
	seg, err := m.AllocSegment(100, 1)
	if err != nil {
		t.Fatalf("AllocSegment: %v", err)
	}
	for {
		p, err := m.Alloc(2)
		if err != nil {
			break
		}
		if seg.Contains(p) {
			t.Fatalf("single-frame Alloc returned %d inside segment [%d,%d)", p, seg.Base, seg.End())
		}
	}
}

func TestLazyPageContents(t *testing.T) {
	m := New(64)
	p, _ := m.Alloc(1)
	if got := m.ReadWord(p.Addr() + 16); got != 0 {
		t.Errorf("fresh frame reads %d, want 0", got)
	}
	m.WriteWord(p.Addr()+16, 0xdeadbeef)
	if got := m.ReadWord(p.Addr() + 16); got != 0xdeadbeef {
		t.Errorf("ReadWord = %#x, want 0xdeadbeef", got)
	}
	// Free drops contents; a re-allocated frame must read zero again.
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	m.allocated[p] = true // simulate re-allocation of the same frame
	if got := m.ReadWord(p.Addr() + 16); got != 0 {
		t.Errorf("recycled frame reads %#x, want 0", got)
	}
}

func TestPFNAddrRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		p := PFN(n)
		return PFNOf(p.Addr()) == p && PFNOf(p.Addr()+PageMask) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after any interleaving of allocs and frees, InUse equals the
// number of live frames and no frame is handed out twice.
func TestAllocatorInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		m := New(32)
		var live []PFN
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				p, err := m.Alloc(0)
				if err != nil {
					continue
				}
				for _, q := range live {
					if q == p {
						return false
					}
				}
				live = append(live, p)
			} else {
				p := live[len(live)-1]
				live = live[:len(live)-1]
				if m.Free(p) != nil {
					return false
				}
			}
		}
		return m.InUse() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
