package audit

import (
	"testing"

	"repro/internal/clock"
)

// FuzzUnmarshal: the CKIAUD1 log parser must reject hostile input —
// truncated headers, oversized meta lengths, ragged record tails — with
// an error, never a panic or an allocation sized by attacker-chosen
// header fields. The seed corpus shares its shape with the snapshot
// package's CKISNAP1 fuzz target: one valid blob, truncations at every
// structural boundary, and targeted mutations.
func FuzzUnmarshal(f *testing.F) {
	blob := Marshal(Meta{Kind: "ckirun", Runtime: "CKI-BM", Workload: "web", FaultSeed: 42},
		[]Event{
			{Kind: EvWriteCR3, VCPU: 0, PCID: 0x101, At: clock.Time(1000), A: 7},
			{Kind: EvPTEWrite, VCPU: 1, PCID: 0x102, At: clock.Time(2000), A: 1, B: 2, C: 3},
		})
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("CKIAUD1\n"))
	f.Add(blob[:9])            // magic + torn meta length
	f.Add(blob[:len(blob)-13]) // ragged record tail
	f.Add(blob[:len(blob)/2])
	huge := append([]byte(nil), blob...)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0x7f // forged metaLen
	f.Add(huge)
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-20] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Unmarshal(data)
		if err != nil {
			return
		}
		// The format is not canonical (reserved record bytes and JSON
		// meta variants are tolerated), so the oracle is semantic: an
		// accepted log must survive a marshal → unmarshal round trip
		// with its events intact.
		l2, err := Unmarshal(Marshal(l.Meta, l.Events))
		if err != nil {
			t.Fatalf("re-marshal of accepted log does not parse: %v", err)
		}
		if len(l2.Events) != len(l.Events) {
			t.Fatalf("events lost in round trip: %d != %d", len(l2.Events), len(l.Events))
		}
		for i := range l.Events {
			if l.Events[i] != l2.Events[i] {
				t.Fatalf("event %d mutated in round trip", i)
			}
		}
	})
}
