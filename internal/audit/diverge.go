package audit

import (
	"fmt"
	"strings"
)

// Divergence is the first point where two event logs differ. Because
// every event is deterministic under the virtual clock, the first
// differing index is stable across repeated comparisons of the same
// two seeded runs — it names the exact machine operation where the
// executions parted ways.
type Divergence struct {
	// Index is the position of the first differing event.
	Index int
	// A and B are the events at Index in each log; nil when that log
	// ended before the divergence point (a pure length divergence).
	A, B *Event
}

// FirstDivergence compares two logs event by event and returns the
// first difference, or nil if the logs are identical.
func FirstDivergence(a, b []Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			ea, eb := a[i], b[i]
			return &Divergence{Index: i, A: &ea, B: &eb}
		}
	}
	if len(a) == len(b) {
		return nil
	}
	d := &Divergence{Index: n}
	if n < len(a) {
		ea := a[n]
		d.A = &ea
	}
	if n < len(b) {
		eb := b[n]
		d.B = &eb
	}
	return d
}

// String renders the divergence report: the index, the virtual
// timestamps, and the side-by-side event diff.
func (d *Divergence) String() string {
	if d == nil {
		return "logs identical"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence at event %d\n", d.Index)
	switch {
	case d.A != nil && d.B != nil:
		fmt.Fprintf(&b, "  a: %s\n", *d.A)
		fmt.Fprintf(&b, "  b: %s\n", *d.B)
	case d.A != nil:
		fmt.Fprintf(&b, "  a: %s\n", *d.A)
		fmt.Fprintf(&b, "  b: <log ended>\n")
	case d.B != nil:
		fmt.Fprintf(&b, "  a: <log ended>\n")
		fmt.Fprintf(&b, "  b: %s\n", *d.B)
	}
	return b.String()
}
