package audit

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/inspect"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/tlb"
)

// The time-travel inspector: machine state at any virtual timestamp is
// a pure fold of the event prefix up to that point. Register state
// comes from the write events; the page-table view is rebuilt from the
// mediated EvPTEWrite readbacks into shadow frames and walked with
// internal/inspect; TLB contents are reconstructed by feeding the
// recorded fill/flush sequence through a real tlb.TLB at the recorded
// capacity, which reproduces FIFO eviction exactly.
//
// Replay invariants (asserted by the internal/backends tests):
//   - ReplayPrefix is a pure fold: applying events[n:m] on top of
//     ReplayPrefix(events, n) equals ReplayPrefix(events, m).
//   - With a recorder attached at container birth (Options.Audit), the
//     reconstructed page table under a guest root is identical to
//     inspect.Walk over live memory, and the reconstructed TLB matches
//     the live TLB entry for entry.
//   - A recorder attached mid-run reconstructs state changes from the
//     attach point only; the TLB and page-table views are then partial.

// VCPUState is the replayed register file of one vCPU.
type VCPUState struct {
	CR0, CR4   uint64
	CR3        uint64 // page-table root PFN
	PCID       uint16
	PKRS, PKRU uint64
	MSRs       map[uint32]uint64
	Faults     uint64 // faults raised on this vCPU so far
	Interrupts uint64 // interrupt deliveries so far
}

// State is machine state reconstructed by folding an event prefix.
type State struct {
	N  int        // events applied
	At clock.Time // timestamp of the last applied event

	vcpus    map[int]*VCPUState
	frames   map[uint64]*mem.Page // shadow page-table frames by PFN
	roots    map[uint64]bool      // frames that took L4-level writes
	tlbs     map[int]*tlb.TLB
	counts   map[Kind]uint64
	injected []Event
}

// NewState returns an empty machine state.
func NewState() *State {
	return &State{
		vcpus:  make(map[int]*VCPUState),
		frames: make(map[uint64]*mem.Page),
		roots:  make(map[uint64]bool),
		tlbs:   make(map[int]*tlb.TLB),
		counts: make(map[Kind]uint64),
	}
}

func (s *State) vcpu(id int) *VCPUState {
	v := s.vcpus[id]
	if v == nil {
		v = &VCPUState{MSRs: make(map[uint32]uint64)}
		s.vcpus[id] = v
	}
	return v
}

func (s *State) frame(pfn uint64) *mem.Page {
	f := s.frames[pfn]
	if f == nil {
		f = new(mem.Page)
		s.frames[pfn] = f
	}
	return f
}

func (s *State) tlbOf(id int) *tlb.TLB {
	t := s.tlbs[id]
	if t == nil {
		t = tlb.New(0)
		s.tlbs[id] = t
	}
	return t
}

// Apply folds one event into the state.
func (s *State) Apply(e Event) {
	s.N++
	s.At = e.At
	s.counts[e.Kind]++
	v := s.vcpu(int(e.VCPU))
	switch e.Kind {
	case EvWriteCR0:
		v.CR0 = e.A
	case EvWriteCR3:
		v.CR3 = e.A
		v.PCID = uint16(e.B)
	case EvWriteCR4:
		v.CR4 = e.A
	case EvWriteMSR:
		v.MSRs[uint32(e.A)] = e.B
	case EvWritePKRS:
		v.PKRS = e.A
	case EvWritePKRU:
		v.PKRU = e.A
	case EvFault:
		v.Faults++
	case EvInterrupt:
		v.Interrupts++
	case EvPTEWrite:
		ptp, idx, level := UnpackPTESlot(e.A)
		s.frame(ptp)[idx] = e.C
		if level == 4 {
			s.roots[ptp] = true
		}
	case EvPTPRetire:
		// The frame may be reallocated later; dropping it keeps the
		// shadow free of stale tables.
		delete(s.frames, e.A)
		delete(s.roots, e.A)
	case EvTLBConfig:
		// A fresh TLB of the recorded capacity (re-emitted when a new
		// machine reuses the vCPU id, which resets the reconstruction).
		s.tlbs[int(e.VCPU)] = tlb.New(int(e.A))
	case EvTLBFill:
		pfn, w, u, nx, g, huge, pkey := UnpackTLBEntry(e.B)
		s.tlbOf(int(e.VCPU)).Insert(e.PCID, e.A, tlb.Entry{
			PFN: mem.PFN(pfn), Writable: w, User: u, NX: nx,
			Global: g, Huge: huge, PKey: pkey,
		})
	case EvTLBFlushPage:
		s.tlbOf(int(e.VCPU)).FlushPage(e.PCID, e.A)
	case EvTLBFlushPCID:
		s.tlbOf(int(e.VCPU)).FlushPCID(uint16(e.A))
	case EvTLBFlushGroup:
		id := e.A
		for _, t := range s.tlbs {
			t.FlushIf(func(pcid uint16) bool { return uint64(pcid>>8) == id })
		}
	case EvTLBFlushAll:
		s.tlbOf(int(e.VCPU)).FlushAll(e.A != 0)
	case EvInjected:
		s.injected = append(s.injected, e)
	}
}

// ReplayPrefix folds the first n events (all of them if n exceeds the
// log) and returns the resulting machine state.
func ReplayPrefix(events []Event, n int) *State {
	if n > len(events) {
		n = len(events)
	}
	s := NewState()
	for _, e := range events[:n] {
		s.Apply(e)
	}
	return s
}

// ReplayUntil folds every event stamped at or before t, in log order —
// the time-travel inspector behind ckireplay -at.
func ReplayUntil(events []Event, t clock.Time) *State {
	s := NewState()
	for _, e := range events {
		if e.At <= t {
			s.Apply(e)
		}
	}
	return s
}

// VCPUIDs returns the vCPUs seen so far, sorted.
func (s *State) VCPUIDs() []int {
	ids := make([]int, 0, len(s.vcpus))
	for id := range s.vcpus {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// VCPU returns the replayed register file of one vCPU (nil if the
// prefix never touched it).
func (s *State) VCPU(id int) *VCPUState { return s.vcpus[id] }

// TLBEntries returns the reconstructed TLB contents of one vCPU.
func (s *State) TLBEntries(id int) []tlb.Slot {
	t := s.tlbs[id]
	if t == nil {
		return nil
	}
	return t.Entries()
}

// Counts returns how many events of each kind the prefix contained.
func (s *State) Counts() map[Kind]uint64 {
	out := make(map[Kind]uint64, len(s.counts))
	for k, n := range s.counts {
		out[k] = n
	}
	return out
}

// Injected returns the fault-injection events in the prefix.
func (s *State) Injected() []Event {
	return append([]Event(nil), s.injected...)
}

// scratch materializes the shadow page-table frames into a sparse
// physical memory large enough for inspect to walk.
func (s *State) scratch() *mem.PhysMem {
	max := uint64(1)
	for pfn, fr := range s.frames {
		if pfn > max {
			max = pfn
		}
		for _, w := range fr {
			p := pagetable.PTE(w)
			if p.Present() && uint64(p.PFN()) > max {
				max = uint64(p.PFN())
			}
		}
	}
	m := mem.New(int(max) + 2)
	for pfn, fr := range s.frames {
		*m.Page(mem.PFN(pfn)) = *fr
	}
	return m
}

// Regions walks the reconstructed page table under root, coalescing
// identically-mapped runs exactly like inspect.Walk over live memory.
func (s *State) Regions(root uint64) []inspect.Region {
	return inspect.Walk(s.scratch(), mem.PFN(root))
}

// RenderPT renders the reconstructed address space under root.
func (s *State) RenderPT(root uint64) string {
	return inspect.Render(s.scratch(), mem.PFN(root))
}

// Dump renders the full state canonically (every field in a fixed
// order), so two equal states produce identical strings.
func (s *State) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d at=%dps\n", s.N, int64(s.At))
	for _, id := range s.VCPUIDs() {
		v := s.vcpus[id]
		fmt.Fprintf(&b, "vcpu%d cr0=%#x cr3=%#x cr4=%#x pcid=%#x pkrs=%#x pkru=%#x faults=%d interrupts=%d\n",
			id, v.CR0, v.CR3, v.CR4, v.PCID, v.PKRS, v.PKRU, v.Faults, v.Interrupts)
		msrs := make([]int, 0, len(v.MSRs))
		for m := range v.MSRs {
			msrs = append(msrs, int(m))
		}
		sort.Ints(msrs)
		for _, m := range msrs {
			fmt.Fprintf(&b, "  msr %#x = %#x\n", m, v.MSRs[uint32(m)])
		}
	}
	pfns := make([]uint64, 0, len(s.frames))
	for pfn := range s.frames {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	for _, pfn := range pfns {
		h := fnv.New64a()
		for _, w := range s.frames[pfn] {
			var wb [8]byte
			for i := 0; i < 8; i++ {
				wb[i] = byte(w >> (8 * i))
			}
			h.Write(wb[:])
		}
		fmt.Fprintf(&b, "ptp %#x hash=%016x\n", pfn, h.Sum64())
	}
	for _, id := range s.tlbIDs() {
		slots := s.tlbs[id].Entries()
		fmt.Fprintf(&b, "tlb vcpu%d cap=%d entries=%d\n", id, s.tlbs[id].Capacity(), len(slots))
		for _, sl := range slots {
			fmt.Fprintf(&b, "  pcid=%#04x vpn=%#x huge=%t pfn=%#x w=%t u=%t nx=%t g=%t pkey=%d\n",
				sl.PCID, sl.VPN, sl.Huge, uint64(sl.Entry.PFN), sl.Entry.Writable,
				sl.Entry.User, sl.Entry.NX, sl.Entry.Global, sl.Entry.PKey)
		}
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if n := s.counts[k]; n > 0 {
			fmt.Fprintf(&b, "count %s=%d\n", k, n)
		}
	}
	fmt.Fprintf(&b, "injected=%d\n", len(s.injected))
	return b.String()
}

// Fingerprint is a stable hash of Dump, for state-equality assertions.
func (s *State) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(s.Dump()))
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *State) tlbIDs() []int {
	ids := make([]int, 0, len(s.tlbs))
	for id := range s.tlbs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Render is the human-readable inspector view (ckireplay -at): the
// register files, the reconstructed address spaces, and the TLBs.
func (s *State) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state after %d events, t=%s\n", s.N, fmtPs(s.At))
	// Walk both the CR3-loaded roots and the guest-owned trees (frames
	// that took L4 writes): mediating runtimes like CKI load a KSM top
	// copy into CR3, so the guest's own root never appears in a CR3
	// write even though its tree replays fully.
	roots := make(map[uint64]bool)
	for r := range s.roots {
		roots[r] = true
	}
	for _, id := range s.VCPUIDs() {
		v := s.vcpus[id]
		fmt.Fprintf(&b, "vcpu%d: cr3=%#x pcid=%#x cr0=%#x cr4=%#x pkrs=%#06x pkru=%#06x faults=%d interrupts=%d\n",
			id, v.CR3, v.PCID, v.CR0, v.CR4, v.PKRS, v.PKRU, v.Faults, v.Interrupts)
		if v.CR3 != 0 {
			roots[v.CR3] = true
		}
	}
	if len(s.injected) > 0 {
		fmt.Fprintf(&b, "injected faults: %d (last: %s)\n",
			len(s.injected), s.injected[len(s.injected)-1].Detail())
	}
	sorted := make([]uint64, 0, len(roots))
	for r := range roots {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, root := range sorted {
		fmt.Fprintf(&b, "address space @ root %#x (replayed):\n", root)
		b.WriteString(s.RenderPT(root))
	}
	const maxShow = 24
	for _, id := range s.tlbIDs() {
		slots := s.tlbs[id].Entries()
		fmt.Fprintf(&b, "tlb vcpu%d: %d entries (cap %d)\n", id, len(slots), s.tlbs[id].Capacity())
		for i, sl := range slots {
			if i == maxShow {
				fmt.Fprintf(&b, "  ... %d more\n", len(slots)-maxShow)
				break
			}
			kind := "4K"
			if sl.Huge {
				kind = "2M"
			}
			fmt.Fprintf(&b, "  pcid=%#04x vpn=%#x %s -> pfn=%#x\n",
				sl.PCID, sl.VPN, kind, uint64(sl.Entry.PFN))
		}
	}
	return b.String()
}

func fmtPs(t clock.Time) string {
	return fmt.Sprintf("%dps (%.3fus)", int64(t), float64(t)/1e6)
}
