package audit

// Canonical machine fingerprinting for checkpoint/restore verification.
//
// The replay fingerprint of replay.go is exact but machine-bound: it
// hashes raw physical frame numbers and event counts, so a container
// restored on a machine whose allocator is in a different state can
// never match it even when its translations are perfectly equivalent.
// Canon computes the PFN-isomorphic form instead: physical frames are
// renamed by order of first appearance, so two machines whose page
// tables, TLB contents and vCPU registers describe the same mapping
// structure — onto different physical frames — produce the same sum.
//
// The caller (internal/backends) feeds state in a fixed order: per
// vCPU registers first, then per process (ascending PID) the root and
// every leaf mapping in ascending VA order, then the user-range TLB
// slots in the tlb package's canonical slot order. Feeding order is
// part of the fingerprint contract; both sides of a comparison must
// walk identically, which they do because both walks are driven by the
// same sorted logical state.

// Canon accumulates a canonical machine description into an FNV-64a
// sum with first-appearance PFN renaming.
type Canon struct {
	h      uint64
	rename map[uint64]uint64
}

// NewCanon returns an empty accumulator.
func NewCanon() *Canon {
	return &Canon{h: fnvOffset, rename: make(map[uint64]uint64)}
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func (c *Canon) word(v uint64) {
	for i := 0; i < 8; i++ {
		c.h ^= v & 0xff
		c.h *= fnvPrime
		v >>= 8
	}
}

// pfn renames a physical frame to its first-appearance ordinal.
func (c *Canon) pfn(p uint64) uint64 {
	id, ok := c.rename[p]
	if !ok {
		id = uint64(len(c.rename) + 1)
		c.rename[p] = id
	}
	return id
}

// Record tags, one per fed element kind.
const (
	tagVCPU = iota + 1
	tagRoot
	tagMapping
	tagTLB
)

// VCPU folds one virtual CPU's architectural state: privilege mode,
// active PCID, and the user protection-key rights. (PKRS is excluded
// by design: it is a transient of the KSM call gate, not container
// state — a restored CKI container re-derives it on the next gate
// crossing.)
func (c *Canon) VCPU(id int, pcid uint16, kernelMode bool, pkru uint64) {
	c.word(tagVCPU)
	c.word(uint64(id))
	c.word(uint64(pcid))
	if kernelMode {
		c.word(1)
	} else {
		c.word(0)
	}
	c.word(pkru)
}

// Root folds one address space's top-level table (renamed).
func (c *Canon) Root(pcid uint16, root uint64) {
	c.word(tagRoot)
	c.word(uint64(pcid))
	c.word(c.pfn(root))
}

// Mapping folds one leaf translation: the VA it serves, the renamed
// frame it lands in, and the caller-packed permission/A-D flag word.
func (c *Canon) Mapping(pcid uint16, va, pfn, flags uint64) {
	c.word(tagMapping)
	c.word(uint64(pcid))
	c.word(va)
	c.word(c.pfn(pfn))
	c.word(flags)
}

// TLBSlot folds one cached translation. The cached frame number is
// deliberately not part of the feed: TLB coherence (flush-on-change)
// guarantees a live entry resolves to the currently mapped frame, which
// the Mapping feed already fingerprints — and shadow-paging runtimes
// cache host-space frames whose numbering is machine-bound.
func (c *Canon) TLBSlot(pcid uint16, va, flags uint64) {
	c.word(tagTLB)
	c.word(uint64(pcid))
	c.word(va)
	c.word(flags)
}

// Sum returns the canonical fingerprint.
func (c *Canon) Sum() uint64 { return c.h }
