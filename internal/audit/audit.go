// Package audit implements the machine-level audit log: a compact,
// append-only record of what the simulated hardware actually did —
// control-register and MSR writes, mediated page-table updates with
// old→new values, faults, interrupt deliveries, IPI send/ack, VM
// entry/exit, KSM gate transitions, TLB fills and flushes — each event
// stamped with virtual time, vCPU, and PCID.
//
// The Recorder follows the same zero-cost observer contract as
// trace.SpanRecorder: a nil *Recorder is a valid no-op, and recording
// never advances the virtual clock, so attaching a recorder changes no
// measured time and the log bytes are identical across runs of the same
// seeded workload. On top of the log, replay.go reconstructs machine
// state at any virtual timestamp and diverge.go pinpoints the first
// event where two runs differ.
package audit

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/tlb"
)

// Kind identifies one machine-event type. The numeric values are the
// on-disk encoding; append new kinds at the end and never renumber.
type Kind uint8

const (
	evInvalid Kind = iota
	// Control-register and MSR state.
	EvWriteCR0  // A=new value
	EvWriteCR3  // A=new root PFN, B=new PCID, C=old root<<16|old PCID
	EvWriteCR4  // A=new value
	EvWriteMSR  // A=MSR index, B=new value, C=old value
	EvWritePKRS // A=new value, B=old value, C=cause (PKRSCause*)
	EvWritePKRU // A=new value, B=old value
	EvWriteICR  // A=target vCPU, B=vector
	// Privilege transitions and faults.
	EvSyscall   // guest syscall instruction retired
	EvSysret    // A=wantIF, B=forced-on flag
	EvFault     // A=hw.FaultKind, B=address, C=PackFaultFlags
	EvInterrupt // A=vector, B=delivery class (IntClass*), C=error code
	EvIret      // A=vector returned from, B=saved IF
	// Mediated page-table updates.
	EvPTEWrite  // A=PackPTESlot, B=old PTE, C=new PTE (readback)
	EvPTPRetire // A=retired table frame PFN
	// SMP and virtualization transitions.
	EvIPISend   // VCPU=target, A=vector
	EvIPIAck    // VCPU=target, A=ack latency ps, B=1 if delayed
	EvShootdown // VCPU=initiator, A=total latency ps, B=unacked targets
	EvVMExit    // A=reason (VMExit*)
	EvVMEntry   // A=reason (VMExit*)
	EvGateEnter // A=gate kind (Gate*), B=call nr or vector
	EvGateExit  // A=gate kind (Gate*), B=call nr or vector
	// Fault injection (chaos runs become explainable).
	EvInjected // A=SiteCode of the fired site
	// TLB movements.
	EvTLBConfig     // A=capacity (one per TLB, at attach)
	EvTLBFill       // A=va, B=PackTLBEntry
	EvTLBFlushPage  // A=va
	EvTLBFlushPCID  // A=pcid
	EvTLBFlushGroup // A=container id (flushes pcid>>8 == id everywhere)
	EvTLBFlushAll   // A=1 if global entries survive
)

var kindNames = [...]string{
	evInvalid:       "invalid",
	EvWriteCR0:      "cr0_write",
	EvWriteCR3:      "cr3_write",
	EvWriteCR4:      "cr4_write",
	EvWriteMSR:      "msr_write",
	EvWritePKRS:     "pkrs_write",
	EvWritePKRU:     "pkru_write",
	EvWriteICR:      "icr_write",
	EvSyscall:       "syscall",
	EvSysret:        "sysret",
	EvFault:         "fault",
	EvInterrupt:     "interrupt",
	EvIret:          "iret",
	EvPTEWrite:      "pte_write",
	EvPTPRetire:     "ptp_retire",
	EvIPISend:       "ipi_send",
	EvIPIAck:        "ipi_ack",
	EvShootdown:     "shootdown",
	EvVMExit:        "vm_exit",
	EvVMEntry:       "vm_entry",
	EvGateEnter:     "gate_enter",
	EvGateExit:      "gate_exit",
	EvInjected:      "fault_injected",
	EvTLBConfig:     "tlb_config",
	EvTLBFill:       "tlb_fill",
	EvTLBFlushPage:  "tlb_flush_page",
	EvTLBFlushPCID:  "tlb_flush_pcid",
	EvTLBFlushGroup: "tlb_flush_group",
	EvTLBFlushAll:   "tlb_flush_all",
}

// NumKinds is the number of defined event kinds (including invalid).
const NumKinds = len(kindNames)

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName resolves an event-kind name ("cr3_write"); 0 if unknown.
func KindByName(name string) Kind {
	for k, n := range kindNames {
		if n == name {
			return Kind(k)
		}
	}
	return evInvalid
}

// Causes for EvWritePKRS (the C operand): who changed the register.
const (
	PKRSCauseWrpkrs   uint64 = 1 // the wrpkrs instruction
	PKRSCauseWrmsr    uint64 = 2 // a wrmsr to IA32_PKRS
	PKRSCauseIntClear uint64 = 3 // hardware clear on interrupt delivery
	PKRSCauseIretRest uint64 = 4 // hardware restore from the iret frame
)

// Delivery classes for EvInterrupt (the B operand).
const (
	IntClassHW        uint64 = 1 // hardware interrupt (IDT gate)
	IntClassException uint64 = 2 // exception delivery
	IntClassSoft      uint64 = 3 // software int N
)

// Gate kinds for EvGateEnter/EvGateExit (the A operand).
const (
	GateKSMCall   uint64 = 1 // pkcall into a KSM service
	GateHypercall uint64 = 2 // switcher world-switch hypercall
	GateInterrupt uint64 = 3 // interrupt funneled through the KSM gate
)

// Reasons for EvVMExit/EvVMEntry (the A operand).
const (
	VMExitHypercall    uint64 = 1
	VMExitEPTViolation uint64 = 2
	VMExitFault        uint64 = 3
	VMExitTimer        uint64 = 4
	VMExitVirtio       uint64 = 5
	VMExitIPI          uint64 = 6
	VMExitSyscall      uint64 = 7
	VMExitPTE          uint64 = 8
)

var vmReasonNames = map[uint64]string{
	VMExitHypercall:    "hypercall",
	VMExitEPTViolation: "ept-violation",
	VMExitFault:        "fault",
	VMExitTimer:        "timer",
	VMExitVirtio:       "virtio",
	VMExitIPI:          "ipi",
	VMExitSyscall:      "syscall",
	VMExitPTE:          "pte-update",
}

// VMReasonName renders a VM exit/entry reason code.
func VMReasonName(code uint64) string {
	if n, ok := vmReasonNames[code]; ok {
		return n
	}
	return fmt.Sprintf("reason(%d)", code)
}

// faultNames mirrors hw.FaultKind.String(). The audit package sits
// below internal/hw in the import graph (hw emits into it), so it
// cannot reference the hw constants; a pinning test in
// internal/backends asserts the two tables never drift.
var faultNames = [...]string{
	"#GP",
	"#GP(pks-blocked)",
	"#PF(not-mapped)",
	"#PF(protection)",
	"#PF(pkey-user)",
	"#PF(pkey-supervisor)",
	"gate-abuse",
	"triple-fault",
}

// FaultName renders a recorded hw.FaultKind operand.
func FaultName(kind uint64) string {
	if kind < uint64(len(faultNames)) {
		return faultNames[kind]
	}
	return fmt.Sprintf("fault(%d)", kind)
}

// siteOrder gives every faults.Site a stable numeric code for the
// binary log (site strings stay in internal/faults; codes here).
var siteOrder = [...]faults.Site{
	1:  faults.FrameAlloc,
	2:  faults.HostAlloc,
	3:  faults.PTEWrite,
	4:  faults.KernelPF,
	5:  faults.DoubleFault,
	6:  faults.VirtioKick,
	7:  faults.IRQDrop,
	8:  faults.StuckCLI,
	9:  faults.Hypercall,
	10: faults.IPILost,
	11: faults.AckDelay,
	12: faults.SnapshotTorn,
}

// SiteCode maps an injection site to its stable log code (0 = unknown).
func SiteCode(s faults.Site) uint64 {
	for i, v := range siteOrder {
		if i > 0 && v == s {
			return uint64(i)
		}
	}
	return 0
}

// SiteName renders a recorded injection-site code.
func SiteName(code uint64) string {
	if code > 0 && code < uint64(len(siteOrder)) {
		return string(siteOrder[code])
	}
	return fmt.Sprintf("site(%d)", code)
}

// Event is one machine event. The struct is comparable so the
// divergence finder can use plain equality.
type Event struct {
	At   clock.Time
	Kind Kind
	VCPU uint8
	PCID uint16
	A    uint64
	B    uint64
	C    uint64
}

// String renders the event for humans (ckireplay -grep).
func (e Event) String() string {
	return fmt.Sprintf("%14dps vcpu%d pcid=%#04x %-15s %s",
		int64(e.At), e.VCPU, e.PCID, e.Kind, e.Detail())
}

// Detail renders the kind-specific operands.
func (e Event) Detail() string {
	switch e.Kind {
	case EvWriteCR0, EvWriteCR4, EvWritePKRU:
		return fmt.Sprintf("new=%#x old=%#x", e.A, e.B)
	case EvWriteCR3:
		return fmt.Sprintf("root=%#x pcid=%#x old_root=%#x old_pcid=%#x",
			e.A, e.B, e.C>>16, e.C&0xffff)
	case EvWriteMSR:
		return fmt.Sprintf("msr=%#x new=%#x old=%#x", e.A, e.B, e.C)
	case EvWritePKRS:
		cause := [...]string{0: "?", 1: "wrpkrs", 2: "wrmsr", 3: "interrupt-clear", 4: "iret-restore"}
		c := "?"
		if e.C < uint64(len(cause)) {
			c = cause[e.C]
		}
		return fmt.Sprintf("new=%#x old=%#x cause=%s", e.A, e.B, c)
	case EvWriteICR:
		return fmt.Sprintf("target=vcpu%d vector=%d", e.A, e.B)
	case EvSysret:
		return fmt.Sprintf("want_if=%d forced=%d", e.A, e.B)
	case EvFault:
		return fmt.Sprintf("%s addr=%#x write=%d kernel=%d",
			FaultName(e.A), e.B, e.C&1, (e.C>>1)&1)
	case EvInterrupt:
		class := [...]string{0: "?", 1: "hw", 2: "exception", 3: "soft"}
		c := "?"
		if e.B < uint64(len(class)) {
			c = class[e.B]
		}
		return fmt.Sprintf("vector=%d class=%s err=%#x", e.A, c, e.C)
	case EvIret:
		return fmt.Sprintf("vector=%d saved_if=%d", e.A, e.B)
	case EvPTEWrite:
		ptp, idx, level := UnpackPTESlot(e.A)
		return fmt.Sprintf("L%d ptp=%#x[%d] old=%#x new=%#x", level, ptp, idx, e.B, e.C)
	case EvPTPRetire:
		return fmt.Sprintf("ptp=%#x", e.A)
	case EvIPISend:
		return fmt.Sprintf("vector=%d", e.A)
	case EvIPIAck:
		return fmt.Sprintf("latency=%dps delayed=%d", e.A, e.B)
	case EvShootdown:
		return fmt.Sprintf("latency=%dps unacked=%d", e.A, e.B)
	case EvVMExit, EvVMEntry:
		return fmt.Sprintf("reason=%s", VMReasonName(e.A))
	case EvGateEnter, EvGateExit:
		gate := [...]string{0: "?", 1: "ksm_call", 2: "hypercall", 3: "interrupt"}
		g := "?"
		if e.A < uint64(len(gate)) {
			g = gate[e.A]
		}
		return fmt.Sprintf("gate=%s nr=%d", g, e.B)
	case EvInjected:
		return fmt.Sprintf("site=%s", SiteName(e.A))
	case EvTLBConfig:
		return fmt.Sprintf("capacity=%d", e.A)
	case EvTLBFill:
		pfn, w, u, nx, g, huge, pkey := UnpackTLBEntry(e.B)
		return fmt.Sprintf("va=%#x pfn=%#x w=%t u=%t nx=%t g=%t huge=%t pkey=%d",
			e.A, pfn, w, u, nx, g, huge, pkey)
	case EvTLBFlushPage:
		return fmt.Sprintf("va=%#x", e.A)
	case EvTLBFlushPCID:
		return fmt.Sprintf("pcid=%#x", e.A)
	case EvTLBFlushGroup:
		return fmt.Sprintf("container=%d", e.A)
	case EvTLBFlushAll:
		return fmt.Sprintf("keep_global=%d", e.A)
	default:
		return fmt.Sprintf("a=%#x b=%#x c=%#x", e.A, e.B, e.C)
	}
}

// PackFaultFlags packs the fault context bits for EvFault's C operand.
func PackFaultFlags(write, kernel bool) uint64 {
	var v uint64
	if write {
		v |= 1
	}
	if kernel {
		v |= 2
	}
	return v
}

// PackPTESlot packs a page-table store location for EvPTEWrite's A
// operand: level in bits 0..3, index (0..511) in bits 4..12, table
// frame PFN from bit 16 up.
func PackPTESlot(ptp uint64, idx, level int) uint64 {
	return ptp<<16 | uint64(idx&0x1ff)<<4 | uint64(level&0xf)
}

// UnpackPTESlot reverses PackPTESlot.
func UnpackPTESlot(v uint64) (ptp uint64, idx, level int) {
	return v >> 16, int(v>>4) & 0x1ff, int(v & 0xf)
}

// PackTLBEntry packs a TLB entry for EvTLBFill's B operand: flag bits
// 0..4, protection key in bits 8..11, PFN from bit 16 up.
func PackTLBEntry(pfn uint64, writable, user, nx, global, huge bool, pkey int) uint64 {
	v := pfn << 16
	if writable {
		v |= 1
	}
	if user {
		v |= 2
	}
	if nx {
		v |= 4
	}
	if global {
		v |= 8
	}
	if huge {
		v |= 16
	}
	v |= uint64(pkey&0xf) << 8
	return v
}

// UnpackTLBEntry reverses PackTLBEntry.
func UnpackTLBEntry(v uint64) (pfn uint64, writable, user, nx, global, huge bool, pkey int) {
	return v >> 16, v&1 != 0, v&2 != 0, v&4 != 0, v&8 != 0, v&16 != 0, int(v>>8) & 0xf
}

// Recorder accumulates machine events. A nil *Recorder is a valid
// no-op, so instrumentation sites need no conditionals; recording
// reads the virtual clock but never advances it.
type Recorder struct {
	// Clk stamps events; the recorder follows the machine it is
	// attached to (Container.AuditTo repoints it), so one recorder can
	// span several sequentially-driven machines.
	Clk *clock.Clock
	// Meta describes the run for ckireplay -live.
	Meta Meta

	events  []Event
	tlbSeen map[*tlb.TLB]bool

	// encBuf is the reused per-recorder record-encoding buffer;
	// EncodeTo streams every event through it so encoding a record
	// allocates nothing.
	encBuf [recordSize]byte
}

// NewRecorder creates a recorder stamping events from clk (which may be
// nil until the recorder is attached to a machine).
func NewRecorder(clk *clock.Clock) *Recorder {
	return &Recorder{Clk: clk}
}

// Emit appends one event stamped with the current virtual time. Safe on
// a nil receiver; never advances the clock.
func (r *Recorder) Emit(kind Kind, vcpu int, pcid uint16, a, b, c uint64) {
	if r == nil {
		return
	}
	var at clock.Time
	if r.Clk != nil {
		at = r.Clk.Now()
	}
	r.events = append(r.events, Event{
		At: at, Kind: kind, VCPU: uint8(vcpu), PCID: pcid, A: a, B: b, C: c,
	})
}

// EmitTLBConfig records one TLB's capacity, once per TLB instance (the
// replay engine uses it to size and reset its reconstruction).
func (r *Recorder) EmitTLBConfig(t *tlb.TLB, vcpu int) {
	if r == nil || t == nil {
		return
	}
	if r.tlbSeen == nil {
		r.tlbSeen = make(map[*tlb.TLB]bool)
	}
	if r.tlbSeen[t] {
		return
	}
	r.tlbSeen[t] = true
	r.Emit(EvTLBConfig, vcpu, 0, uint64(t.Capacity()), 0, 0)
}

// Reserve ensures room for n more events without reallocating, so a
// steady-state recording loop can run allocation-free (the wall-clock
// benchmarks pin Emit at 0 allocs/op after a Reserve).
func (r *Recorder) Reserve(n int) {
	if r == nil || cap(r.events)-len(r.events) >= n {
		return
	}
	grown := make([]Event, len(r.events), len(r.events)+n)
	copy(grown, r.events)
	r.events = grown
}

// Reset drops all recorded events and TLB dedup state but keeps the
// event buffer's capacity, so a recorder can be reused across runs
// without re-paying the allocation.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	for k := range r.tlbSeen {
		delete(r.tlbSeen, k)
	}
}

// AppendFrom appends src's events, in order, onto r. The parallel
// experiment runner records each grid cell into its own recorder and
// then concatenates them in the fixed sequential cell order, so the
// merged log is byte-identical to a single-recorder sequential run.
func (r *Recorder) AppendFrom(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	r.events = append(r.events, src.events...)
}

// Events returns the recorded events in order (a copy).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return append([]Event(nil), r.events...)
}

// EventsFrom returns a copy of the events recorded at index n and
// later — the incremental-cursor companion to Events, used by the
// telemetry flight recorder to poll only what arrived since its last
// visit.
func (r *Recorder) EventsFrom(n int) []Event {
	if r == nil || n >= len(r.events) {
		return nil
	}
	if n < 0 {
		n = 0
	}
	return append([]Event(nil), r.events[n:]...)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// WrapInjector makes fault injections first-class audit events: the
// returned Injector emits EvInjected whenever the wrapped one fires.
// With a nil recorder or injector the input is returned unchanged.
func WrapInjector(inner faults.Injector, rec *Recorder) faults.Injector {
	if rec == nil || inner == nil {
		return inner
	}
	return &auditedInjector{inner: inner, rec: rec}
}

type auditedInjector struct {
	inner faults.Injector
	rec   *Recorder
}

func (a *auditedInjector) Fire(site faults.Site) bool {
	if !a.inner.Fire(site) {
		return false
	}
	a.rec.Emit(EvInjected, 0, 0, SiteCode(site), 0, 0)
	return true
}
