package audit

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/tlb"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit(EvWriteCR3, 0, 0, 1, 2, 3)
	r.EmitTLBConfig(tlb.New(8), 0)
	if r.Len() != 0 || r.Events() != nil {
		t.Fatalf("nil recorder recorded something")
	}
	if got := len(r.Marshal()); got == 0 {
		t.Fatalf("nil recorder must still marshal a valid empty log")
	}
}

func TestEmitStampsVirtualTimeWithoutAdvancing(t *testing.T) {
	clk := new(clock.Clock)
	clk.Advance(clock.FromNanos(5))
	before := clk.Now()
	r := NewRecorder(clk)
	r.Emit(EvSyscall, 1, 0x0101, 0, 0, 0)
	if clk.Now() != before {
		t.Fatalf("Emit advanced the clock: %v -> %v", before, clk.Now())
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].At != before || ev[0].VCPU != 1 || ev[0].PCID != 0x0101 {
		t.Fatalf("bad event: %+v", ev)
	}
}

func TestEmitTLBConfigOncePerTLB(t *testing.T) {
	r := NewRecorder(new(clock.Clock))
	a, b := tlb.New(16), tlb.New(32)
	r.EmitTLBConfig(a, 0)
	r.EmitTLBConfig(a, 0) // duplicate: dropped
	r.EmitTLBConfig(b, 1) // a different TLB on a fresh machine: kept
	ev := r.Events()
	if len(ev) != 2 || ev[0].A != 16 || ev[1].A != 32 {
		t.Fatalf("want two configs (16, 32), got %+v", ev)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	clk := new(clock.Clock)
	r := NewRecorder(clk)
	r.Meta = Meta{Kind: "ckirun", Runtime: "cki", Workload: "btree", FaultSeed: 7}
	r.Emit(EvWriteCR3, 2, 0x0203, 42, 3, 0x123)
	clk.Advance(clock.FromNanos(100))
	r.Emit(EvFault, 0, 0, 2, 0xdeadbeef, PackFaultFlags(true, false))
	l, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta != r.Meta {
		t.Fatalf("meta roundtrip: got %+v want %+v", l.Meta, r.Meta)
	}
	want := r.Events()
	if len(l.Events) != len(want) {
		t.Fatalf("event count: got %d want %d", len(l.Events), len(want))
	}
	for i := range want {
		if l.Events[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, l.Events[i], want[i])
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("short"), []byte("NOTAUDIT........")} {
		if _, err := Unmarshal(data); err == nil {
			t.Fatalf("accepted %q", data)
		}
	}
	// Truncated records are rejected too.
	good := NewRecorder(new(clock.Clock))
	good.Emit(EvSyscall, 0, 0, 0, 0, 0)
	data := good.Marshal()
	if _, err := Unmarshal(data[:len(data)-3]); err == nil {
		t.Fatalf("accepted truncated record stream")
	}
}

func TestPackRoundtrips(t *testing.T) {
	if err := quick.Check(func(ptp uint32, idx uint16, level uint8) bool {
		i, l := int(idx%512), int(level%5)
		p, gi, gl := UnpackPTESlot(PackPTESlot(uint64(ptp), i, l))
		return p == uint64(ptp) && gi == i && gl == l
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(pfn uint32, w, u, nx, g, h bool, pkey uint8) bool {
		k := int(pkey % 16)
		gp, gw, gu, gnx, gg, gh, gk := UnpackTLBEntry(PackTLBEntry(uint64(pfn), w, u, nx, g, h, k))
		return gp == uint64(pfn) && gw == w && gu == u && gnx == nx && gg == g && gh == h && gk == k
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSiteCodes(t *testing.T) {
	sites := []faults.Site{
		faults.FrameAlloc, faults.HostAlloc, faults.PTEWrite, faults.KernelPF,
		faults.DoubleFault, faults.VirtioKick, faults.IRQDrop, faults.StuckCLI,
		faults.Hypercall, faults.IPILost, faults.AckDelay,
	}
	seen := map[uint64]bool{}
	for _, s := range sites {
		c := SiteCode(s)
		if c == 0 {
			t.Fatalf("site %q has no code", s)
		}
		if seen[c] {
			t.Fatalf("site %q shares code %d", s, c)
		}
		seen[c] = true
		if SiteName(c) != string(s) {
			t.Fatalf("SiteName(%d) = %q, want %q", c, SiteName(c), s)
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(1); int(k) < NumKinds; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		if KindByName(name) != k {
			t.Fatalf("KindByName(%q) = %v, want %v", name, KindByName(name), k)
		}
	}
}

func TestWrapInjector(t *testing.T) {
	r := NewRecorder(new(clock.Clock))
	plan := faults.NewPlan(1, faults.Rule{Site: faults.VirtioKick, Nth: 2})
	inj := WrapInjector(plan, r)
	if inj.Fire(faults.VirtioKick) {
		t.Fatalf("first occurrence must not fire")
	}
	if !inj.Fire(faults.VirtioKick) {
		t.Fatalf("second occurrence must fire")
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != EvInjected || ev[0].A != SiteCode(faults.VirtioKick) {
		t.Fatalf("want one EvInjected for virtio-kick, got %+v", ev)
	}
	// Nil recorder / injector: pass-through.
	if WrapInjector(nil, r) != nil {
		t.Fatalf("nil injector must stay nil")
	}
	if got := WrapInjector(plan, nil); got != faults.Injector(plan) {
		t.Fatalf("nil recorder must return the inner injector")
	}
}

func TestFirstDivergence(t *testing.T) {
	base := []Event{
		{At: 1, Kind: EvSyscall},
		{At: 2, Kind: EvWriteCR3, A: 10, B: 1},
		{At: 3, Kind: EvSysret},
	}
	if d := FirstDivergence(base, base); d != nil {
		t.Fatalf("identical logs diverged: %v", d)
	}
	mod := append([]Event(nil), base...)
	mod[1].A = 11
	d := FirstDivergence(base, mod)
	if d == nil || d.Index != 1 || d.A.A != 10 || d.B.A != 11 {
		t.Fatalf("bad divergence: %+v", d)
	}
	d = FirstDivergence(base, base[:2])
	if d == nil || d.Index != 2 || d.A == nil || d.B != nil {
		t.Fatalf("bad length divergence: %+v", d)
	}
	if s := d.String(); s == "" {
		t.Fatalf("empty divergence report")
	}
}

// synthetic builds a deterministic event stream exercising every state
// transition the replay fold implements.
func synthetic(n int) []Event {
	var ev []Event
	ev = append(ev, Event{Kind: EvTLBConfig, A: 8})
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; len(ev) < n; i++ {
		at := clock.Time(i) * clock.Nanosecond
		switch next() % 10 {
		case 0:
			ev = append(ev, Event{At: at, Kind: EvWriteCR3, A: next() % 64, B: next() % 4})
		case 1:
			ev = append(ev, Event{At: at, Kind: EvWritePKRS, A: next() & 0xffff})
		case 2:
			ev = append(ev, Event{At: at, Kind: EvPTEWrite,
				A: PackPTESlot(2+next()%8, int(next()%512), 1), C: next()})
		case 3:
			ev = append(ev, Event{At: at, Kind: EvPTPRetire, A: 2 + next()%8})
		case 4:
			ev = append(ev, Event{At: at, Kind: EvTLBFill, PCID: uint16(next() % 4),
				A: (next() % 4096) << 12,
				B: PackTLBEntry(next()%1024, true, true, false, false, false, 0)})
		case 5:
			ev = append(ev, Event{At: at, Kind: EvTLBFlushPage, PCID: uint16(next() % 4),
				A: (next() % 4096) << 12})
		case 6:
			ev = append(ev, Event{At: at, Kind: EvTLBFlushPCID, A: next() % 4})
		case 7:
			ev = append(ev, Event{At: at, Kind: EvFault, A: next() % 8, B: next()})
		case 8:
			ev = append(ev, Event{At: at, Kind: EvWriteMSR, A: 0x6e1, B: next()})
		case 9:
			ev = append(ev, Event{At: at, Kind: EvInterrupt, A: 32 + next()%4, B: 1})
		}
	}
	return ev
}

// TestReplayFoldPurity is the prefix-replay property on synthetic
// events: folding events[n:m] on top of ReplayPrefix(ev, n) must equal
// ReplayPrefix(ev, m) exactly.
func TestReplayFoldPurity(t *testing.T) {
	ev := synthetic(400)
	if err := quick.Check(func(a, b uint16) bool {
		n, m := int(a)%(len(ev)+1), int(b)%(len(ev)+1)
		if n > m {
			n, m = m, n
		}
		st := ReplayPrefix(ev, n)
		for _, e := range ev[n:m] {
			st.Apply(e)
		}
		return st.Fingerprint() == ReplayPrefix(ev, m).Fingerprint()
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReplayUntil(t *testing.T) {
	ev := synthetic(100)
	cut := ev[40].At
	n := 0
	for _, e := range ev {
		if e.At <= cut {
			n++
		}
	}
	if got, want := ReplayUntil(ev, cut).Fingerprint(), ReplayPrefix(ev, n).Fingerprint(); got != want {
		t.Fatalf("ReplayUntil != prefix of all events at or before the cut")
	}
}

func TestReplayStateViews(t *testing.T) {
	ev := []Event{
		{Kind: EvTLBConfig, A: 4},
		{At: 1, Kind: EvWriteCR3, A: 5, B: 0x0101},
		// Root 5 slot 0 -> table 6; table 6 slot 0 -> leaf at pfn 7,
		// present+writable+user (bits 0,1,2), through two mid levels.
		{At: 2, Kind: EvPTEWrite, A: PackPTESlot(5, 0, 4), C: 6<<12 | 0b111},
		{At: 3, Kind: EvPTEWrite, A: PackPTESlot(6, 0, 3), C: 8<<12 | 0b111},
		{At: 4, Kind: EvPTEWrite, A: PackPTESlot(8, 0, 2), C: 9<<12 | 0b111},
		{At: 5, Kind: EvPTEWrite, A: PackPTESlot(9, 0, 1), C: 7<<12 | 0b111},
		{At: 6, Kind: EvTLBFill, PCID: 0x0101, A: 0,
			B: PackTLBEntry(7, true, true, false, false, false, 0)},
	}
	st := ReplayPrefix(ev, len(ev))
	v := st.VCPU(0)
	if v == nil || v.CR3 != 5 || v.PCID != 0x0101 {
		t.Fatalf("bad vcpu state: %+v", v)
	}
	regs := st.Regions(5)
	if len(regs) != 1 || regs[0].Start != 0 || !regs[0].Writable || !regs[0].User {
		t.Fatalf("bad replayed regions: %+v", regs)
	}
	slots := st.TLBEntries(0)
	if len(slots) != 1 || slots[0].PCID != 0x0101 || uint64(slots[0].Entry.PFN) != 7 {
		t.Fatalf("bad replayed TLB: %+v", slots)
	}
	if st.Render() == "" || st.Dump() == "" {
		t.Fatalf("empty renderings")
	}
}
