package audit

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/clock"
)

// BenchmarkAuditRecord measures Emit on a warm recorder — the cost every
// instrumented hardware chokepoint pays when a log is being taken.
func BenchmarkAuditRecord(b *testing.B) {
	clk := new(clock.Clock)
	r := NewRecorder(clk)
	r.Reserve(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(EvSyscall, 0, 0x101, uint64(i), 0, 0)
	}
}

// BenchmarkAuditRecordNil measures the disabled-observer path: with no
// recorder attached the chokepoints must cost a branch and nothing else.
func BenchmarkAuditRecordNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(EvSyscall, 0, 0x101, uint64(i), 0, 0)
	}
}

// BenchmarkAuditEncode measures the streaming binary encoder per record.
func BenchmarkAuditEncode(b *testing.B) {
	clk := new(clock.Clock)
	r := NewRecorder(clk)
	for i := 0; i < 4096; i++ {
		r.Emit(EvPTEWrite, i%4, 0x101, uint64(i), uint64(i)*3, uint64(i)*7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.EncodeTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// ns/op above covers 4096 records; report the per-record figure too.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/4096, "ns/record")
}

// TestAuditEmitAllocs pins the recording hot paths at zero allocations
// in steady state: a reserved recorder, and the nil no-op recorder.
func TestAuditEmitAllocs(t *testing.T) {
	clk := new(clock.Clock)
	r := NewRecorder(clk)
	r.Reserve(2000)
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(EvSyscall, 1, 0x101, 42, 43, 44)
	}); n != 0 {
		t.Errorf("Emit (reserved) allocs/op = %v, want 0", n)
	}

	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Emit(EvSyscall, 1, 0x101, 42, 43, 44)
	}); n != 0 {
		t.Errorf("Emit (nil recorder) allocs/op = %v, want 0", n)
	}
}

// TestAuditEncodeAllocsFlat checks the streaming encoder's allocation
// count does not depend on the number of records: only the one-time
// header allocates, every record reuses the recorder's buffer.
func TestAuditEncodeAllocsFlat(t *testing.T) {
	mk := func(events int) *Recorder {
		r := NewRecorder(new(clock.Clock))
		for i := 0; i < events; i++ {
			r.Emit(EvSyscall, 0, 0, uint64(i), 0, 0)
		}
		return r
	}
	small, large := mk(10), mk(10000)
	allocs := func(r *Recorder) float64 {
		return testing.AllocsPerRun(10, func() {
			if err := r.EncodeTo(io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := allocs(small), allocs(large)
	if a != b {
		t.Errorf("EncodeTo allocs grow with record count: %v for 10 events vs %v for 10000", a, b)
	}
}

// TestEncodeToMatchesMarshal checks the streaming path is byte-for-byte
// the in-memory Marshal encoding (the artifact-identity contract).
func TestEncodeToMatchesMarshal(t *testing.T) {
	clk := new(clock.Clock)
	r := NewRecorder(clk)
	r.Meta = Meta{Kind: "smp", Seed: 7, Scale: 2}
	for i := 0; i < 257; i++ {
		clk.Advance(clock.Time(i))
		r.Emit(Kind(1+i%(NumKinds-1)), i%8, uint16(i), uint64(i), uint64(i)*3, uint64(i)*5)
	}
	var buf bytes.Buffer
	if err := r.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), r.Marshal()) {
		t.Fatal("EncodeTo output differs from Marshal output")
	}
}

// TestRecorderAppendFrom checks cell-order concatenation reproduces a
// single sequential recorder, and Reset keeps capacity.
func TestRecorderAppendFrom(t *testing.T) {
	clk := new(clock.Clock)
	seq := NewRecorder(clk)
	a, b := NewRecorder(clk), NewRecorder(clk)
	for i := 0; i < 10; i++ {
		seq.Emit(EvSyscall, 0, 0, uint64(i), 0, 0)
		if i < 5 {
			a.Emit(EvSyscall, 0, 0, uint64(i), 0, 0)
		} else {
			b.Emit(EvSyscall, 0, 0, uint64(i), 0, 0)
		}
	}
	merged := NewRecorder(clk)
	merged.AppendFrom(a)
	merged.AppendFrom(b)
	merged.Meta = seq.Meta
	if !bytes.Equal(merged.Marshal(), seq.Marshal()) {
		t.Fatal("concatenated per-cell logs differ from the sequential log")
	}

	merged.Reset()
	if merged.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", merged.Len())
	}
	if cap(merged.events) == 0 {
		t.Fatal("Reset dropped the event buffer capacity")
	}
}
