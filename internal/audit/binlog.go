package audit

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/clock"
)

// Binary log format v1. Little-endian throughout:
//
//	offset  size  field
//	0       8     magic "CKIAUD1\n"
//	8       4     metaLen (u32)
//	12      n     meta JSON (run descriptor)
//	12+n    40*k  fixed-size event records
//
// One record:
//
//	0   1  kind
//	1   1  vcpu
//	2   2  pcid
//	4   4  reserved (zero)
//	8   8  at (virtual time, ps, i64)
//	16  8  a
//	24  8  b
//	32  8  c
//
// Every field is deterministic under the virtual clock, so two logs of
// the same seeded run are byte-identical.

const (
	logMagic   = "CKIAUD1\n"
	recordSize = 40
)

// Meta describes the run that produced a log, with enough detail for
// ckireplay -live to re-execute it.
type Meta struct {
	// Kind of run: "ckirun" (one container, one workload) or "smp"
	// (the bench SMP scaling experiment).
	Kind string `json:"kind,omitempty"`
	// ckirun runs.
	Runtime   string `json:"runtime,omitempty"`
	Nested    bool   `json:"nested,omitempty"`
	Workload  string `json:"workload,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// smp runs.
	Seed  uint64 `json:"seed,omitempty"`
	Scale int    `json:"scale,omitempty"`
}

// Log is a parsed audit log.
type Log struct {
	Meta   Meta
	Events []Event
}

// encodeRecord packs one event into buf (little-endian v1 layout).
func encodeRecord(buf *[recordSize]byte, e Event) {
	buf[0] = byte(e.Kind)
	buf[1] = e.VCPU
	binary.LittleEndian.PutUint16(buf[2:4], e.PCID)
	for i := 4; i < 8; i++ {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(e.At)))
	binary.LittleEndian.PutUint64(buf[16:24], e.A)
	binary.LittleEndian.PutUint64(buf[24:32], e.B)
	binary.LittleEndian.PutUint64(buf[32:40], e.C)
}

// Marshal encodes a log in the v1 binary format.
func Marshal(meta Meta, events []Event) []byte {
	mj, err := json.Marshal(meta)
	if err != nil {
		// Meta is a plain struct of scalars; this cannot fail.
		panic(err)
	}
	out := make([]byte, 0, len(logMagic)+4+len(mj)+recordSize*len(events))
	out = append(out, logMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(mj)))
	out = append(out, mj...)
	var rec [recordSize]byte
	for _, e := range events {
		encodeRecord(&rec, e)
		out = append(out, rec[:]...)
	}
	return out
}

// Marshal encodes the recorder's log in the v1 binary format.
func (r *Recorder) Marshal() []byte {
	if r == nil {
		return Marshal(Meta{}, nil)
	}
	return Marshal(r.Meta, r.events)
}

// EncodeTo streams the recorder's log to w in the v1 binary format,
// producing exactly the bytes Marshal would. Every record goes through
// the recorder's reused 40-byte buffer, so the per-record encoding cost
// is a fixed-size copy with zero heap allocation — only the one-time
// header (meta JSON) allocates.
func (r *Recorder) EncodeTo(w io.Writer) error {
	if r == nil {
		_, err := w.Write(Marshal(Meta{}, nil))
		return err
	}
	mj, err := json.Marshal(r.Meta)
	if err != nil {
		// Meta is a plain struct of scalars; this cannot fail.
		panic(err)
	}
	var hdr [len(logMagic) + 4]byte
	copy(hdr[:], logMagic)
	binary.LittleEndian.PutUint32(hdr[len(logMagic):], uint32(len(mj)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(mj); err != nil {
		return err
	}
	for _, e := range r.events {
		encodeRecord(&r.encBuf, e)
		if _, err := w.Write(r.encBuf[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile streams the recorder's log to path (same bytes as Marshal,
// without materializing the whole log in memory).
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := r.EncodeTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Unmarshal parses a v1 binary log.
func Unmarshal(data []byte) (*Log, error) {
	if len(data) < len(logMagic)+4 || string(data[:len(logMagic)]) != logMagic {
		return nil, fmt.Errorf("audit: not a CKIAUD1 log")
	}
	data = data[len(logMagic):]
	metaLen := int(binary.LittleEndian.Uint32(data[:4]))
	data = data[4:]
	if metaLen > len(data) {
		return nil, fmt.Errorf("audit: truncated meta (%d > %d bytes)", metaLen, len(data))
	}
	var l Log
	if err := json.Unmarshal(data[:metaLen], &l.Meta); err != nil {
		return nil, fmt.Errorf("audit: meta: %w", err)
	}
	data = data[metaLen:]
	if len(data)%recordSize != 0 {
		return nil, fmt.Errorf("audit: truncated records (%d trailing bytes)", len(data)%recordSize)
	}
	l.Events = make([]Event, 0, len(data)/recordSize)
	for off := 0; off < len(data); off += recordSize {
		rec := data[off : off+recordSize]
		l.Events = append(l.Events, Event{
			Kind: Kind(rec[0]),
			VCPU: rec[1],
			PCID: binary.LittleEndian.Uint16(rec[2:4]),
			At:   clock.Time(int64(binary.LittleEndian.Uint64(rec[8:16]))),
			A:    binary.LittleEndian.Uint64(rec[16:24]),
			B:    binary.LittleEndian.Uint64(rec[24:32]),
			C:    binary.LittleEndian.Uint64(rec[32:40]),
		})
	}
	return &l, nil
}

// ReadFile loads and parses a log file.
func ReadFile(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
