package metrics

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
)

// feed pushes the buildRegistry histogram samples through
// ObserveExemplar with request IDs attached.
func feedExemplars(h *Histogram) {
	h.ObserveExemplar(clock.FromNanos(90), 0xaa)
	h.ObserveExemplar(clock.FromNanos(90), 0xbb)
	h.ObserveExemplar(clock.FromNanos(336), 0xcc)
}

// TestExemplarDisabledByteUnchanged is the golden gate: a histogram
// that never opted in renders — Prometheus text and JSON snapshot —
// byte-identically whether samples arrive via Observe or
// ObserveExemplar, so attaching request IDs to every completion is
// free for pre-exemplar consumers.
func TestExemplarDisabledByteUnchanged(t *testing.T) {
	plain := buildRegistry()
	viaIDs := NewRegistry()
	viaIDs.Counter("guest_syscalls_total", "Syscalls served.", L("runtime", "CKI-BM")).Add(7)
	viaIDs.Gauge("tlb_hit_ratio", "Hit ratio.", L("runtime", "CKI-BM"), L("pcid", "1")).Set(0.875)
	feedExemplars(viaIDs.Histogram("syscall_latency_ns", "Syscall latency.", []int64{64, 128},
		L("runtime", "CKI-BM")))

	var a, b bytes.Buffer
	if err := plain.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := viaIDs.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("disabled exemplars changed the Prometheus render:\n%s\nvs\n%s", a.String(), b.String())
	}
	if strings.Contains(b.String(), "#") != strings.Contains(a.String(), "#") {
		t.Errorf("exemplar markers leaked into a disabled render")
	}
	aj, err := plain.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := viaIDs.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("disabled exemplars changed the JSON snapshot")
	}
	if bytes.Contains(bj, []byte("exemplars")) {
		t.Errorf("exemplars field present in a disabled snapshot")
	}
}

// TestExemplarEnabledRender: an opted-in histogram keeps, per bucket,
// the last (request, value) pair and renders it in both formats.
func TestExemplarEnabledRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("syscall_latency_ns", "Syscall latency.", []int64{64, 128})
	h.EnableExemplars()
	feedExemplars(h)
	h.ObserveExemplar(clock.FromNanos(100), 0xdd) // overwrites 0xbb in le=128
	h.ObserveExemplar(clock.FromNanos(50), 0)     // reserved id: counted, not retained

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("Exemplars() = %+v, want 2 (le=128 and +Inf)", ex)
	}
	if ex[0].BucketNs != 128 || ex[0].ID != 0xdd || ex[0].Value != clock.FromNanos(100) {
		t.Errorf("le=128 exemplar = %+v, want last writer 0xdd@100ns", ex[0])
	}
	if ex[1].BucketNs != -1 || ex[1].ID != 0xcc {
		t.Errorf("+Inf exemplar = %+v, want 0xcc", ex[1])
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"syscall_latency_ns_bucket{le=\"128\"} 4 # {request_id=\"00000000000000dd\"} 100.000",
		"syscall_latency_ns_bucket{le=\"+Inf\"} 5 # {request_id=\"00000000000000cc\"} 336.000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm missing %q in:\n%s", want, out)
		}
	}
	// The le=64 bucket holds only the discarded zero-ID sample: no tail.
	if !strings.Contains(out, "syscall_latency_ns_bucket{le=\"64\"} 1\n") {
		t.Errorf("empty-exemplar bucket line altered:\n%s", out)
	}

	js, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"bucket_ns": 128`, `"request_id": "00000000000000dd"`, `"value_ns": 100`,
		`"bucket_ns": -1`, `"request_id": "00000000000000cc"`,
	} {
		if !strings.Contains(string(js), want) {
			t.Errorf("snapshot missing %s in:\n%s", want, js)
		}
	}
}

// TestExemplarMerge: merging cells in the fixed sequential order makes
// the merged exemplar the last cell's, deterministically, and an
// exemplar-free destination adopts the source's.
func TestExemplarMerge(t *testing.T) {
	mk := func(id uint64, ns float64) *Registry {
		r := NewRegistry()
		h := r.Histogram("lat", "l", []int64{64, 128})
		h.EnableExemplars()
		h.ObserveExemplar(clock.FromNanos(ns), id)
		return r
	}
	dst := NewRegistry()
	dst.Merge(mk(0x1, 90))
	dst.Merge(mk(0x2, 100))
	h := dst.Histogram("lat", "l", []int64{64, 128})
	ex := h.Exemplars()
	if len(ex) != 1 || ex[0].ID != 0x2 || ex[0].BucketNs != 128 {
		t.Fatalf("merged exemplars = %+v, want last writer 0x2 in le=128", ex)
	}
	if h.Count() != 2 {
		t.Fatalf("merged count = %d, want 2", h.Count())
	}
}
