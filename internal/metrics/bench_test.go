package metrics

import (
	"bytes"
	"testing"

	"repro/internal/clock"
)

// TestIntStr checks the interned table agrees with the formatted path
// on both sides of the table boundary.
func TestIntStr(t *testing.T) {
	for _, n := range []int{0, 1, 9, 10, 255, 1023, 1024, 99999, -7} {
		want := ""
		switch {
		case n == -7:
			want = "-7"
		case n == 99999:
			want = "99999"
		case n == 1024:
			want = "1024"
		default:
			want = smallInts[n]
		}
		if got := IntStr(n); got != want {
			t.Errorf("IntStr(%d) = %q, want %q", n, got, want)
		}
	}
	if got := IntStr(42); got != "42" {
		t.Errorf("IntStr(42) = %q", got)
	}
}

// TestIntStrAllocs pins the interned range at zero allocations.
func TestIntStrAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		_ = IntStr(137)
	}); n != 0 {
		t.Errorf("IntStr allocs/op = %v, want 0", n)
	}
}

// TestFlowMetricsObserveAllocs pins both observer states at zero
// allocations per event: nil FlowMetrics (disabled) and a live one
// (histograms are pre-registered, Observe only updates counters).
func TestFlowMetricsObserveAllocs(t *testing.T) {
	var nilFM *FlowMetrics
	if n := testing.AllocsPerRun(1000, func() {
		nilFM.ObserveSyscall(1000)
		nilFM.ObservePageFault(1000)
		nilFM.ObserveShootdown(1000)
	}); n != 0 {
		t.Errorf("nil FlowMetrics Observe allocs/op = %v, want 0", n)
	}

	reg := NewRegistry()
	fm := NewFlowMetrics(reg, L("runtime", "CKI"))
	if n := testing.AllocsPerRun(1000, func() {
		fm.ObserveSyscall(1000)
		fm.ObservePageFault(1000)
		fm.ObserveShootdown(1000)
	}); n != 0 {
		t.Errorf("live FlowMetrics Observe allocs/op = %v, want 0", n)
	}
}

// TestCounterHotPathAllocs pins a cached counter handle at zero
// allocations per Add.
func TestCounterHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot_total", "hot path counter", L("runtime", "CKI"))
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocs/op = %v, want 0", n)
	}
}

// populate drives a registry the way one smp grid cell does: counters,
// a gauge, and a histogram, under a cell-specific label.
func populate(reg *Registry, runtime, vcpus string, base uint64) {
	reg.Counter("guest_syscalls_total", "Syscalls.", L("runtime", runtime), L("vcpus", vcpus)).Add(base)
	reg.Counter("tlb_hits_total", "Hits.", L("pcid", "257"), L("runtime", runtime), L("vcpus", vcpus)).Add(base * 2)
	reg.Gauge("tlb_hit_ratio", "Ratio.", L("runtime", runtime), L("vcpus", vcpus)).Set(0.5)
	h := reg.Histogram("smp_request_latency_ns", "Latency.", nil, L("runtime", runtime), L("vcpus", vcpus))
	for i := uint64(0); i < base; i++ {
		h.Observe(clock.Time(1000 * 1000 * (i + 1))) // spread across buckets (ps)
	}
}

// TestRegistryMergeReproducesSequential checks merging per-cell
// registries in cell order yields byte-identical Prometheus text and
// JSON snapshots to one registry fed sequentially in the same order.
func TestRegistryMergeReproducesSequential(t *testing.T) {
	seq := NewRegistry()
	populate(seq, "RunC", "1", 3)
	populate(seq, "RunC", "2", 5)
	populate(seq, "CKI", "1", 7)

	cells := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	populate(cells[0], "RunC", "1", 3)
	populate(cells[1], "RunC", "2", 5)
	populate(cells[2], "CKI", "1", 7)
	merged := NewRegistry()
	for _, c := range cells {
		merged.Merge(c)
	}

	var a, b bytes.Buffer
	if err := seq.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("merged Prom text differs from sequential:\n--- seq\n%s\n--- merged\n%s", a.String(), b.String())
	}

	aj, err := seq.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := merged.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Error("merged JSON snapshot differs from sequential")
	}
}

// TestRegistryMergeAccumulates checks overlapping series add rather
// than overwrite (two cells touching the same counter must sum).
func TestRegistryMergeAccumulates(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x_total", "x", L("runtime", "CKI")).Add(3)
	b.Counter("x_total", "x", L("runtime", "CKI")).Add(4)
	ah := a.Histogram("lat_ns", "lat", nil, L("runtime", "CKI"))
	bh := b.Histogram("lat_ns", "lat", nil, L("runtime", "CKI"))
	ah.Observe(100_000)
	bh.Observe(200_000)
	bh.Observe(1 << 40) // lands in +Inf

	m := NewRegistry()
	m.Merge(a)
	m.Merge(b)
	if got := m.Counter("x_total", "x", L("runtime", "CKI")).Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	mh := m.Histogram("lat_ns", "lat", nil, L("runtime", "CKI"))
	if mh.Count() != 3 {
		t.Errorf("merged histogram count = %d, want 3", mh.Count())
	}
	if mh.Sum() != 100_000+200_000+(1<<40) {
		t.Errorf("merged histogram sum = %d", mh.Sum())
	}
}
