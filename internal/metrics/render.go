package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseSnapshot loads a snapshot written by Snapshot.JSON.
func ParseSnapshot(b []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("metrics: parse snapshot: %w", err)
	}
	return s, nil
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return "(no labels)"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, " ")
}

// Render writes the snapshot as a readable listing. Series come back in
// the snapshot's sorted order and label keys are sorted, so the output
// is deterministic.
func (s *Snapshot) Render(w io.Writer) error {
	for _, f := range s.Families {
		if _, err := fmt.Fprintf(w, "%s (%s) %s\n", f.Name, f.Kind, f.Help); err != nil {
			return err
		}
		for _, sr := range f.Series {
			var err error
			switch {
			case sr.Count != nil:
				sum := int64(0)
				if sr.SumNs != nil {
					sum = *sr.SumNs
				}
				mean := "-"
				if *sr.Count > 0 {
					mean = fmtNanos(sum * 1000 / int64(*sr.Count))
				}
				_, err = fmt.Fprintf(w, "  %-56s count=%d sum=%dns mean=%sns\n",
					renderLabels(sr.Labels), *sr.Count, sum, mean)
			case sr.Value != nil:
				_, err = fmt.Fprintf(w, "  %-56s %g\n", renderLabels(sr.Labels), *sr.Value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
