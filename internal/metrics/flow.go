package metrics

import "repro/internal/clock"

// FlowMetrics bundles the per-container latency histograms the guest
// kernel feeds on its hot paths. A nil *FlowMetrics is a valid no-op,
// so the kernel's fast path stays branch-plus-return when metrics are
// disabled.
type FlowMetrics struct {
	SyscallLat   *Histogram
	PageFaultLat *Histogram
	HypercallLat *Histogram
	ShootdownLat *Histogram
}

// NewFlowMetrics registers the flow histograms under the given labels
// (typically runtime and container).
func NewFlowMetrics(reg *Registry, labels ...Label) *FlowMetrics {
	return &FlowMetrics{
		SyscallLat: reg.Histogram("syscall_latency_ns",
			"End-to-end guest syscall latency.", nil, labels...),
		PageFaultLat: reg.Histogram("pagefault_latency_ns",
			"Guest page-fault handling latency (trap to iret).", nil, labels...),
		HypercallLat: reg.Histogram("hypercall_latency_ns",
			"Guest hypercall latency.", nil, labels...),
		ShootdownLat: reg.Histogram("shootdown_latency_ns",
			"Initiator-side TLB shootdown latency.", nil, labels...),
	}
}

// ObserveSyscall records one syscall latency.
func (m *FlowMetrics) ObserveSyscall(d clock.Time) {
	if m != nil {
		m.SyscallLat.Observe(d)
	}
}

// ObservePageFault records one page-fault latency.
func (m *FlowMetrics) ObservePageFault(d clock.Time) {
	if m != nil {
		m.PageFaultLat.Observe(d)
	}
}

// ObserveHypercall records one hypercall latency.
func (m *FlowMetrics) ObserveHypercall(d clock.Time) {
	if m != nil {
		m.HypercallLat.Observe(d)
	}
}

// ObserveShootdown records one initiator-side shootdown latency.
func (m *FlowMetrics) ObserveShootdown(d clock.Time) {
	if m != nil {
		m.ShootdownLat.Observe(d)
	}
}
