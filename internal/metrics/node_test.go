package metrics

import (
	"strings"
	"testing"
)

// TestNodeLabel: the fleet node label is a plain label with the
// interned small-int fast path.
func TestNodeLabel(t *testing.T) {
	if got := NodeLabel(7); got != L("node", "7") {
		t.Fatalf("NodeLabel(7) = %+v", got)
	}
	if got := NodeLabel(1234); got != L("node", "1234") {
		t.Fatalf("NodeLabel(1234) = %+v", got)
	}
}

// TestNodeLabelAbsentGolden pins the exact rendered bytes of a
// registry that never attaches a node label — single-machine metric
// output is byte-unchanged by the fleet layer.
func TestNodeLabelAbsentGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("guest_syscalls_total", "Syscalls served.", L("runtime", "cki")).Add(3)
	var b strings.Builder
	if err := reg.Snapshot().Render(&b); err != nil {
		t.Fatal(err)
	}
	const golden = "guest_syscalls_total (counter) Syscalls served.\n" +
		"  runtime=cki                                              3\n"
	if b.String() != golden {
		t.Fatalf("render changed without a node label:\n%q\nwant:\n%q", b.String(), golden)
	}
	if strings.Contains(b.String(), "node") {
		t.Fatalf("node label leaked into unlabeled output:\n%s", b.String())
	}
}

// TestNodeLabelPresent: a node-labeled series renders the label in key
// order alongside the runtime label.
func TestNodeLabelPresent(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("guest_syscalls_total", "Syscalls served.",
		NodeLabel(4), L("runtime", "cki")).Add(3)
	var b strings.Builder
	if err := reg.Snapshot().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "node=4") {
		t.Fatalf("node label missing:\n%s", b.String())
	}
}
