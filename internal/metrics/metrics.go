// Package metrics is a deterministic, dependency-free metrics registry
// for the simulator: typed counters, gauges, and virtual-time
// histograms with label sets, a Prometheus-style text exposition, and
// a JSON snapshot. All observed times come from the virtual clock and
// all output is sorted, so two runs of the same seeded workload emit
// byte-identical artifacts. A nil registry or instrument is a valid
// no-op, and no method ever advances the clock, so disabled metrics
// cost zero virtual cycles.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/clock"
)

// Label is one key=value dimension on a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// NodeLabel is the fleet node identity label (1-based node IDs). Every
// series a fleet node emits carries it, so fleet-wide snapshots fold
// and split per node; single-machine code never attaches it, keeping
// pre-fleet metric output byte-identical.
func NodeLabel(id int) Label { return L("node", IntStr(id)) }

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	// Nearly every call site passes labels already in key order; skip
	// the defensive copy then. (Retaining the caller's slice is safe:
	// the registry's variadic entry points hand us a fresh slice.)
	sorted := true
	for i := 1; i < len(labels); i++ {
		if labels[i-1].Key > labels[i].Key {
			sorted = false
			break
		}
	}
	if sorted {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// smallInts interns the decimal strings hot label paths need (vCPU
// IDs, PCIDs, small counts) so building a label never allocates for
// common values.
var smallInts [1024]string

func init() {
	for i := range smallInts {
		smallInts[i] = fmt.Sprintf("%d", i)
	}
}

// IntStr returns the decimal rendering of n, interned for small
// non-negative values. Use it instead of fmt.Sprintf/strconv on label
// construction paths.
func IntStr(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return fmt.Sprintf("%d", n)
}

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   familyKind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families in creation order. The zero value is
// not usable; call NewRegistry. A nil *Registry hands out nil
// instruments, which are valid no-ops.
type Registry struct {
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind familyKind) *family {
	f, ok := r.byName[name]
	if ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s",
				name, kindNames[f.kind], kindNames[kind]))
		}
		return f
	}
	f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func (f *family) get(labels []Label) *series {
	labels = sortLabels(labels)
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: labels}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter is a monotonically increasing uint64. Nil-safe.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable float64. Nil-safe.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// exemplar is the last (request id, value) pair a bucket observed,
// retained only when the histogram opted in via EnableExemplars.
type exemplar struct {
	id  uint64
	val clock.Time
	set bool
}

// Histogram is a virtual-time latency distribution with fixed
// nanosecond upper bounds. Nil-safe.
type Histogram struct {
	bounds []int64 // ns, ascending
	counts []uint64
	inf    uint64
	sum    clock.Time
	n      uint64
	// ex holds per-bucket exemplars; non-nil doubles as the opt-in
	// flag. infEx is the +Inf bucket's exemplar.
	ex    []exemplar
	infEx exemplar
}

// DefaultLatencyBuckets covers the simulator's flow latencies
// (hundreds of ns to tens of µs), in nanoseconds.
var DefaultLatencyBuckets = []int64{
	64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
}

// bucket returns the index of the bucket d falls in, len(bounds) for
// +Inf. Compared in picoseconds with integer math — float conversion
// here could round a boundary sample into the wrong bucket.
func (h *Histogram) bucket(d clock.Time) int {
	ps := int64(d)
	for i, ub := range h.bounds {
		if ps <= ub*1000 {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one latency sample.
func (h *Histogram) Observe(d clock.Time) {
	if h == nil {
		return
	}
	h.sum += d
	h.n++
	if i := h.bucket(d); i < len(h.counts) {
		h.counts[i]++
	} else {
		h.inf++
	}
}

// EnableExemplars opts the histogram into retaining, per bucket, the
// last request ID and value observed through ObserveExemplar. Off by
// default: a histogram that never opts in renders byte-identically to
// one that predates exemplars (a golden test pins this).
func (h *Histogram) EnableExemplars() {
	if h != nil && h.ex == nil {
		h.ex = make([]exemplar, len(h.bounds))
	}
}

// ObserveExemplar records one latency sample attributed to a request
// ID. On a histogram that has not opted in (or with id 0, the reserved
// "no request" value) it degrades to a plain Observe, so callers can
// pass IDs unconditionally.
func (h *Histogram) ObserveExemplar(d clock.Time, id uint64) {
	if h == nil {
		return
	}
	h.sum += d
	h.n++
	i := h.bucket(d)
	if i < len(h.counts) {
		h.counts[i]++
	} else {
		h.inf++
	}
	if h.ex == nil || id == 0 {
		return
	}
	e := exemplar{id: id, val: d, set: true}
	if i < len(h.ex) {
		h.ex[i] = e
	} else {
		h.infEx = e
	}
}

// Exemplar is one bucket's retained (request, value) pair.
type Exemplar struct {
	// BucketNs is the bucket's upper bound in nanoseconds, -1 for the
	// +Inf bucket.
	BucketNs int64
	ID       uint64
	Value    clock.Time
}

// Exemplars returns the recorded exemplars in bucket order, +Inf last;
// nil when the histogram never opted in or recorded none.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil || h.ex == nil {
		return nil
	}
	var out []Exemplar
	for i, e := range h.ex {
		if e.set {
			out = append(out, Exemplar{BucketNs: h.bounds[i], ID: e.id, Value: e.val})
		}
	}
	if h.infEx.set {
		out = append(out, Exemplar{BucketNs: -1, ID: h.infEx.id, Value: h.infEx.val})
	}
	return out
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total observed virtual time (0 on nil).
func (h *Histogram) Sum() clock.Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Counter registers (or finds) a counter series. Nil-safe: a nil
// registry returns a nil counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.family(name, help, kindCounter).get(labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.family(name, help, kindGauge).get(labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or finds) a histogram series with the given
// nanosecond bucket bounds (DefaultLatencyBuckets if nil).
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.family(name, help, kindHistogram).get(labels)
	if s.h == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		s.h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
	}
	return s.h
}

// Merge folds src into r. Families register in src's creation order —
// so merging per-cell registries in the fixed sequential cell order
// reproduces the family order a single sequential registry would have —
// and series accumulate: counters add, gauges adopt src's value,
// histograms add bucket counts, sums, and sample counts. Bucket bounds
// must agree (same instrument definitions on both sides).
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, sf := range src.families {
		df := r.family(sf.name, sf.help, sf.kind)
		for _, ss := range sf.series {
			ds := df.get(ss.labels)
			switch sf.kind {
			case kindCounter:
				if ss.c != nil {
					if ds.c == nil {
						ds.c = &Counter{}
					}
					ds.c.v += ss.c.v
				}
			case kindGauge:
				if ss.g != nil {
					if ds.g == nil {
						ds.g = &Gauge{}
					}
					ds.g.v = ss.g.v
				}
			case kindHistogram:
				if ss.h == nil {
					continue
				}
				if ds.h == nil {
					ds.h = &Histogram{
						bounds: ss.h.bounds,
						counts: make([]uint64, len(ss.h.bounds)),
					}
				}
				if len(ds.h.counts) != len(ss.h.counts) {
					panic(fmt.Sprintf("metrics: Merge %s: bucket count mismatch (%d vs %d)",
						sf.name, len(ds.h.counts), len(ss.h.counts)))
				}
				for i, c := range ss.h.counts {
					ds.h.counts[i] += c
				}
				ds.h.inf += ss.h.inf
				ds.h.sum += ss.h.sum
				ds.h.n += ss.h.n
				if ss.h.ex != nil {
					// Adopt src's exemplars per set bucket; merging
					// cells in the fixed sequential order makes "last
					// writer" deterministic.
					if ds.h.ex == nil {
						ds.h.ex = make([]exemplar, len(ds.h.counts))
					}
					for i, e := range ss.h.ex {
						if e.set {
							ds.h.ex[i] = e
						}
					}
					if ss.h.infEx.set {
						ds.h.infEx = ss.h.infEx
					}
				}
			}
		}
	}
}

// SeriesView is a read-only view of one live series handed to Visit
// callbacks. Exactly one of the value groups is meaningful, selected by
// Kind: counters expose Counter, gauges Value, histograms the bucket
// fields. Bounds and Counts alias registry-owned storage — callers must
// copy before retaining or mutating.
type SeriesView struct {
	Name   string
	Kind   string // "counter" | "gauge" | "histogram"
	Labels []Label

	Counter uint64  // counter value
	Value   float64 // gauge value

	Bounds []int64    // histogram bucket upper bounds, ns
	Counts []uint64   // per-bucket counts (not cumulative)
	Inf    uint64     // +Inf bucket count
	Sum    clock.Time // total observed virtual time
	Count  uint64     // total samples
}

// Visit walks every series in family creation order, series in
// registration order within a family. The iteration order is
// deterministic for a deterministic workload, which is what lets a
// telemetry scraper assign stable series identities without sorting.
// Nil-safe: visiting a nil registry is a no-op.
func (r *Registry) Visit(fn func(SeriesView)) {
	if r == nil {
		return
	}
	for _, f := range r.families {
		for _, s := range f.series {
			v := SeriesView{Name: f.name, Kind: kindNames[f.kind], Labels: s.labels}
			switch f.kind {
			case kindCounter:
				v.Counter = s.c.Value()
			case kindGauge:
				v.Value = s.g.Value()
			case kindHistogram:
				if s.h != nil {
					v.Bounds = s.h.bounds
					v.Counts = s.h.counts
					v.Inf = s.h.inf
					v.Sum = s.h.sum
					v.Count = s.h.n
				}
			}
			fn(v)
		}
	}
}

// fmtNanos renders picoseconds as a decimal nanosecond literal with
// three fractional digits, integer math only.
func fmtNanos(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%03d", neg, ps/1000, ps%1000)
}

func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm writes the registry in Prometheus text exposition format.
// Families appear in creation order; series are sorted by label key,
// so the output is byte-stable.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, kindNames[f.kind]); err != nil {
			return err
		}
		srs := append([]*series(nil), f.series...)
		sort.Slice(srs, func(i, j int) bool {
			return labelKey(srs[i].labels) < labelKey(srs[j].labels)
		})
		for _, s := range srs {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, promLabels(s.labels), s.g.Value())
			case kindHistogram:
				// exSuffix renders the OpenMetrics-style exemplar tail
				// of a bucket line; empty unless the histogram opted in
				// and the bucket holds one, so exemplar-free output is
				// byte-identical to the pre-exemplar format.
				exSuffix := func(e exemplar) string {
					if !e.set {
						return ""
					}
					return fmt.Sprintf(" # {request_id=\"%016x\"} %s", e.id, fmtNanos(int64(e.val)))
				}
				var cum uint64
				for i, ub := range s.h.bounds {
					cum += s.h.counts[i]
					var ex exemplar
					if s.h.ex != nil {
						ex = s.h.ex[i]
					}
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
						promLabels(s.labels, L("le", fmt.Sprintf("%d", ub))), cum, exSuffix(ex)); err != nil {
						return err
					}
				}
				cum += s.h.inf
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
					promLabels(s.labels, L("le", "+Inf")), cum, exSuffix(s.h.infEx)); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
					promLabels(s.labels), fmtNanos(int64(s.h.sum))); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), s.h.n)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// SeriesSnapshot is one series in a JSON snapshot. encoding/json sorts
// the Labels map keys, keeping the bytes deterministic.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	SumNs  *int64            `json:"sum_ns,omitempty"`
	Bounds []int64           `json:"buckets_ns,omitempty"`
	Counts []uint64          `json:"bucket_counts,omitempty"`
	Inf    *uint64           `json:"inf_count,omitempty"`
	// Exemplars appears only on histograms that opted in and recorded
	// at least one, so exemplar-free snapshots keep their exact bytes.
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// ExemplarSnapshot is one bucket exemplar in a JSON snapshot.
type ExemplarSnapshot struct {
	// BucketNs is the bucket upper bound in nanoseconds, -1 for +Inf.
	BucketNs  int64  `json:"bucket_ns"`
	RequestID string `json:"request_id"`
	ValueNs   int64  `json:"value_ns"`
}

// FamilySnapshot is one metric family in a JSON snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is the full registry state, JSON-ready.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures the registry for JSON export.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Families: []FamilySnapshot{}}
	if r == nil {
		return snap
	}
	for _, f := range r.families {
		fs := FamilySnapshot{Name: f.name, Kind: kindNames[f.kind], Help: f.help,
			Series: []SeriesSnapshot{}}
		srs := append([]*series(nil), f.series...)
		sort.Slice(srs, func(i, j int) bool {
			return labelKey(srs[i].labels) < labelKey(srs[j].labels)
		})
		for _, s := range srs {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = map[string]string{}
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				v := float64(s.c.Value())
				ss.Value = &v
			case kindGauge:
				v := s.g.Value()
				ss.Value = &v
			case kindHistogram:
				n := s.h.n
				sum := int64(s.h.sum) / 1000
				inf := s.h.inf
				ss.Count = &n
				ss.SumNs = &sum
				ss.Bounds = s.h.bounds
				ss.Counts = s.h.counts
				ss.Inf = &inf
				for _, e := range s.h.Exemplars() {
					ss.Exemplars = append(ss.Exemplars, ExemplarSnapshot{
						BucketNs:  e.BucketNs,
						RequestID: fmt.Sprintf("%016x", e.ID),
						ValueNs:   int64(e.Value) / 1000,
					})
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// JSON renders the snapshot as deterministic indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
