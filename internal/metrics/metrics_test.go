package metrics

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
)

// Disabled metrics are nil instruments from a nil registry: every
// operation must be a safe no-op.
func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	g := r.Gauge("x_ratio", "help")
	h := r.Histogram("x_ns", "help", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1.5)
	h.Observe(clock.FromNanos(100))
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteProm: %v", err)
	}
	if snap := r.Snapshot(); len(snap.Families) != 0 {
		t.Errorf("nil Snapshot has %d families", len(snap.Families))
	}
	var fm *FlowMetrics
	fm.ObserveSyscall(10)
	fm.ObservePageFault(10)
	fm.ObserveHypercall(10)
	fm.ObserveShootdown(10)
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", L("runtime", "cki"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same name + labels resolves to the same series.
	if c2 := r.Counter("reqs_total", "requests", L("runtime", "cki")); c2 != c {
		t.Error("re-registration returned a different series")
	}
	// Label order must not matter.
	g := r.Gauge("ratio", "r", L("a", "1"), L("b", "2"))
	if g2 := r.Gauge("ratio", "r", L("b", "2"), L("a", "1")); g2 != g {
		t.Error("label order changed series identity")
	}
	g.Set(0.5)
	if g.Value() != 0.5 {
		t.Errorf("gauge = %g, want 0.5", g.Value())
	}
}

// Bucketing is integer picosecond math: a sample exactly on a bound
// lands in that bound's bucket, one picosecond over goes to the next.
func TestHistogramBoundaryBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", []int64{64, 128})
	h.Observe(clock.FromNanos(64))     // exactly 64ns -> bucket 0
	h.Observe(clock.FromNanos(64) + 1) // 64ns + 1ps -> bucket 1
	h.Observe(clock.FromNanos(128))    // exactly 128ns -> bucket 1
	h.Observe(clock.FromNanos(500))    // overflow -> +Inf
	if h.counts[0] != 1 || h.counts[1] != 2 || h.inf != 1 {
		t.Errorf("buckets = %v inf=%d, want [1 2] 1", h.counts, h.inf)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	want := clock.FromNanos(64) + clock.FromNanos(64) + 1 +
		clock.FromNanos(128) + clock.FromNanos(500)
	if h.Sum() != want {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", nil)
	if len(h.bounds) != len(DefaultLatencyBuckets) {
		t.Errorf("got %d bounds, want %d", len(h.bounds), len(DefaultLatencyBuckets))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "h")
	r.Gauge("x", "h")
}

func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("guest_syscalls_total", "Syscalls served.", L("runtime", "CKI-BM")).Add(7)
	r.Gauge("tlb_hit_ratio", "Hit ratio.", L("runtime", "CKI-BM"), L("pcid", "1")).Set(0.875)
	h := r.Histogram("syscall_latency_ns", "Syscall latency.", []int64{64, 128},
		L("runtime", "CKI-BM"))
	h.Observe(clock.FromNanos(90))
	h.Observe(clock.FromNanos(90))
	h.Observe(clock.FromNanos(336))
	return r
}

func TestWritePromFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP guest_syscalls_total Syscalls served.
# TYPE guest_syscalls_total counter
guest_syscalls_total{runtime="CKI-BM"} 7
# HELP tlb_hit_ratio Hit ratio.
# TYPE tlb_hit_ratio gauge
tlb_hit_ratio{pcid="1",runtime="CKI-BM"} 0.875
# HELP syscall_latency_ns Syscall latency.
# TYPE syscall_latency_ns histogram
syscall_latency_ns_bucket{runtime="CKI-BM",le="64"} 0
syscall_latency_ns_bucket{runtime="CKI-BM",le="128"} 2
syscall_latency_ns_bucket{runtime="CKI-BM",le="+Inf"} 3
syscall_latency_ns_sum{runtime="CKI-BM"} 516.000
syscall_latency_ns_count{runtime="CKI-BM"} 3
`
	if got := buf.String(); got != want {
		t.Errorf("WriteProm:\n%s\nwant:\n%s", got, want)
	}
}

// Two identically-fed registries must snapshot to the same bytes, and
// the snapshot must survive a parse round trip.
func TestSnapshotDeterminismAndRoundTrip(t *testing.T) {
	b1, err := buildRegistry().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := buildRegistry().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("snapshots of identical registries differ")
	}
	snap, err := ParseSnapshot(b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 3 {
		t.Fatalf("parsed %d families, want 3", len(snap.Families))
	}
	hist := snap.Families[2]
	s := hist.Series[0]
	if s.Count == nil || *s.Count != 3 || s.SumNs == nil || *s.SumNs != 516 {
		t.Errorf("histogram series = %+v, want count 3 sum 516ns", s)
	}
	if len(s.Bounds) != 2 || s.Counts[0] != 0 || s.Counts[1] != 2 || *s.Inf != 1 {
		t.Errorf("histogram buckets = %+v", s)
	}
	b3, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Error("snapshot JSON not stable across a parse round trip")
	}
}

func TestRenderSnapshot(t *testing.T) {
	snap, err := ParseSnapshot(mustJSON(t, buildRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"guest_syscalls_total (counter) Syscalls served.",
		"runtime=CKI-BM",
		"pcid=1 runtime=CKI-BM",
		"count=3 sum=516ns mean=172.000ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := snap.Render(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("Render not deterministic")
	}
}

func mustJSON(t *testing.T, r *Registry) []byte {
	t.Helper()
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
