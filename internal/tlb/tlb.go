// Package tlb models a PCID-tagged translation lookaside buffer.
//
// The TLB caches completed walks keyed by (PCID, virtual page number).
// It is the mechanism behind two of the paper's experiments: the PCID
// isolation that keeps a malicious guest's invlpg from flushing other
// containers' entries (§4.1), and the one- vs two-dimensional walk cost
// gap measured by the TLB-miss-intensive applications of Table 4.
//
// Internally the TLB is index-backed: entries live in per-PCID maps
// (so a single-context flush touches only that context's entries, not
// the whole structure), and FIFO replacement runs over a ring buffer
// whose slots are validated against the entry's stored slot index —
// a flushed entry simply leaves a tombstone that the eviction hand
// skips in O(1) amortized time. Every operation is O(1) amortized in
// the TLB capacity; stale ring slots are compacted away once they
// outnumber the capacity, so memory stays bounded even under
// flush-heavy workloads that never trigger eviction.
package tlb

import (
	"sort"

	"repro/internal/mem"
)

// Entry is a cached translation.
type Entry struct {
	PFN      mem.PFN // frame of the 4 KiB page containing the VA
	Writable bool
	User     bool
	NX       bool
	Global   bool
	Huge     bool
	PKey     int
}

// Stats counts TLB events.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
	Evicts  uint64
}

// PCIDStat is the per-context slice of the hit/miss counters. The
// high byte of a guest PCID encodes the container, so these rows let
// the metrics registry attribute TLB behaviour per container context.
type PCIDStat struct {
	PCID   uint16
	Hits   uint64
	Misses uint64
}

// tagged is one cached translation plus the virtual index of the FIFO
// ring slot that owns it. A ring slot is live iff the entry it names
// still exists and still points back at it; anything else is a
// tombstone the eviction hand discards.
type tagged struct {
	e    Entry
	slot uint64
}

// space holds one PCID's translations, keyed by virtual page number
// (bit 63 tags 2 MiB entries, exactly as the flat map used to).
type space struct {
	pcid    uint16
	entries map[uint64]tagged
}

// ringKey names an insertion in the FIFO ring.
type ringKey struct {
	pcid uint16
	vpn  uint64
}

// TLB is a finite, PCID-tagged TLB with FIFO replacement. The zero
// value is unusable; use New.
type TLB struct {
	capacity int
	n        int // live entries across all spaces
	spaces   map[uint16]*space
	cur      *space // last-touched space (the common consecutive-access fast path)

	// ring is the FIFO insertion order. head/tail are virtual indices
	// (physical slot = index & (len(ring)-1)); stale counts tombstoned
	// slots still in [head, tail).
	ring       []ringKey
	head, tail uint64
	stale      int

	stats   Stats
	perPCID map[uint16]*PCIDStat
	curStat *PCIDStat // last-touched per-PCID row
}

// DefaultCapacity approximates a modern L2 STLB (entries).
const DefaultCapacity = 2048

// New creates a TLB with the given entry capacity (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *TLB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	ringSize := 8
	for ringSize < capacity {
		ringSize <<= 1
	}
	return &TLB{
		capacity: capacity,
		spaces:   make(map[uint16]*space),
		ring:     make([]ringKey, ringSize),
		perPCID:  make(map[uint16]*PCIDStat),
	}
}

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters (aggregate and per-PCID).
func (t *TLB) ResetStats() {
	t.stats = Stats{}
	t.perPCID = make(map[uint16]*PCIDStat)
	t.curStat = nil
}

func (t *TLB) pcidStat(pcid uint16) *PCIDStat {
	if st := t.curStat; st != nil && st.PCID == pcid {
		return st
	}
	if t.perPCID == nil {
		t.perPCID = make(map[uint16]*PCIDStat)
	}
	st, ok := t.perPCID[pcid]
	if !ok {
		st = &PCIDStat{PCID: pcid}
		t.perPCID[pcid] = st
	}
	t.curStat = st
	return st
}

// PCIDStats returns the per-context counters, sorted by PCID so output
// built from them is deterministic.
func (t *TLB) PCIDStats() []PCIDStat {
	out := make([]PCIDStat, 0, len(t.perPCID))
	for _, st := range t.perPCID {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PCID < out[j].PCID })
	return out
}

func vpn4k(va uint64) uint64 { return va >> mem.PageShift }
func vpn2m(va uint64) uint64 { return va >> 21 }

// space returns the entry map for pcid, or nil (read path).
func (t *TLB) space(pcid uint16) *space {
	if sp := t.cur; sp != nil && sp.pcid == pcid {
		return sp
	}
	sp := t.spaces[pcid]
	if sp != nil {
		t.cur = sp
	}
	return sp
}

// Lookup searches for a translation of va in pcid. Huge (2 MiB) entries
// are checked after 4 KiB ones, as hardware probes both structures.
func (t *TLB) Lookup(pcid uint16, va uint64) (Entry, bool) {
	if sp := t.space(pcid); sp != nil {
		if tg, ok := sp.entries[vpn4k(va)]; ok && !tg.e.Huge {
			t.stats.Hits++
			t.pcidStat(pcid).Hits++
			return tg.e, true
		}
		if tg, ok := sp.entries[vpn2m(va)|1<<63]; ok {
			t.stats.Hits++
			t.pcidStat(pcid).Hits++
			return tg.e, true
		}
	}
	t.stats.Misses++
	t.pcidStat(pcid).Misses++
	return Entry{}, false
}

// push appends k at the ring tail, growing the ring if full.
func (t *TLB) push(k ringKey) {
	if int(t.tail-t.head) == len(t.ring) {
		grown := make([]ringKey, len(t.ring)*2)
		oldMask := uint64(len(t.ring) - 1)
		newMask := uint64(len(grown) - 1)
		for i := t.head; i != t.tail; i++ {
			grown[i&newMask] = t.ring[i&oldMask]
		}
		t.ring = grown
	}
	t.ring[t.tail&uint64(len(t.ring)-1)] = k
	t.tail++
}

// live reports whether virtual ring index idx (holding k) still owns a
// cached entry.
func (t *TLB) live(k ringKey, idx uint64) (*space, bool) {
	sp := t.spaces[k.pcid]
	if sp == nil {
		return nil, false
	}
	tg, ok := sp.entries[k.vpn]
	return sp, ok && tg.slot == idx
}

// compact rewrites the ring keeping only live slots (renumbering the
// entries they own), dropping every tombstone. Called when tombstones
// outnumber the capacity, so its cost amortizes to O(1) per flush.
func (t *TLB) compact() {
	mask := uint64(len(t.ring) - 1)
	w := t.head
	for r := t.head; r != t.tail; r++ {
		k := t.ring[r&mask]
		if sp, ok := t.live(k, r); ok {
			tg := sp.entries[k.vpn]
			tg.slot = w
			sp.entries[k.vpn] = tg
			t.ring[w&mask] = k
			w++
		}
	}
	t.tail = w
	t.stale = 0
}

// Insert caches a completed walk.
func (t *TLB) Insert(pcid uint16, va uint64, e Entry) {
	vpn := vpn4k(va)
	if e.Huge {
		vpn = vpn2m(va) | 1<<63
	}
	sp := t.cur
	if sp == nil || sp.pcid != pcid {
		sp = t.spaces[pcid]
		if sp == nil {
			sp = &space{pcid: pcid, entries: make(map[uint64]tagged, 16)}
			t.spaces[pcid] = sp
		}
		t.cur = sp
	}
	if tg, ok := sp.entries[vpn]; ok {
		// Refresh in place: a re-inserted entry keeps its FIFO position,
		// exactly as the original flat-map implementation did.
		tg.e = e
		sp.entries[vpn] = tg
		return
	}
	mask := uint64(len(t.ring) - 1)
	for t.n >= t.capacity && t.head != t.tail {
		k := t.ring[t.head&mask]
		idx := t.head
		t.head++
		if vsp, ok := t.live(k, idx); ok {
			delete(vsp.entries, k.vpn)
			t.n--
			t.stats.Evicts++
		} else {
			t.stale--
		}
	}
	if t.stale > t.capacity {
		t.compact()
	}
	t.push(ringKey{pcid: pcid, vpn: vpn})
	sp.entries[vpn] = tagged{e: e, slot: t.tail - 1}
	t.n++
}

// FlushPage invalidates the translations of va in pcid (invlpg).
func (t *TLB) FlushPage(pcid uint16, va uint64) {
	if sp := t.space(pcid); sp != nil {
		if _, ok := sp.entries[vpn4k(va)]; ok {
			delete(sp.entries, vpn4k(va))
			t.n--
			t.stale++
		}
		if _, ok := sp.entries[vpn2m(va)|1<<63]; ok {
			delete(sp.entries, vpn2m(va)|1<<63)
			t.n--
			t.stale++
		}
	}
	t.stats.Flushes++
}

// dropSpace tombstones every ring slot sp owns and removes it. The
// ring is untouched: the eviction hand discards the dead slots later.
func (t *TLB) dropSpace(sp *space) {
	t.n -= len(sp.entries)
	t.stale += len(sp.entries)
	delete(t.spaces, sp.pcid)
	if t.cur == sp {
		t.cur = nil
	}
}

// FlushPCID invalidates all entries of one PCID (invpcid single-context,
// or a CR3 load without the no-flush bit). Cost is proportional to the
// flushed context, not to the TLB capacity or total occupancy.
func (t *TLB) FlushPCID(pcid uint16) {
	if sp := t.spaces[pcid]; sp != nil {
		t.dropSpace(sp)
	}
	t.stats.Flushes++
}

// FlushIf invalidates every entry whose PCID satisfies pred. The
// supervisor uses it to scrub all address spaces of one dead container
// (a whole PCID group) without knowing how many ASIDs the guest minted.
// Cost is proportional to the number of live contexts plus the entries
// actually flushed.
func (t *TLB) FlushIf(pred func(pcid uint16) bool) {
	for pcid, sp := range t.spaces {
		if pred(pcid) {
			t.dropSpace(sp)
		}
	}
	t.stats.Flushes++
}

// CountIf reports how many live entries have a PCID satisfying pred
// (tests verify PCID-group flushes with it).
func (t *TLB) CountIf(pred func(pcid uint16) bool) int {
	n := 0
	for pcid, sp := range t.spaces {
		if pred(pcid) {
			n += len(sp.entries)
		}
	}
	return n
}

// FlushAll invalidates everything, optionally keeping global entries.
func (t *TLB) FlushAll(keepGlobal bool) {
	if !keepGlobal {
		// Everything dies, so every ring slot is a tombstone: reset the
		// hand instead of walking it.
		t.spaces = make(map[uint16]*space)
		t.cur = nil
		t.n = 0
		t.head, t.tail, t.stale = 0, 0, 0
		t.stats.Flushes++
		return
	}
	for pcid, sp := range t.spaces {
		for vpn, tg := range sp.entries {
			if tg.e.Global {
				continue
			}
			delete(sp.entries, vpn)
			t.n--
			t.stale++
		}
		if len(sp.entries) == 0 {
			if t.cur == sp {
				t.cur = nil
			}
			delete(t.spaces, pcid)
		}
	}
	t.stats.Flushes++
}

// Len reports the number of live entries (for tests).
func (t *TLB) Len() int { return t.n }

// Capacity returns the configured entry capacity.
func (t *TLB) Capacity() int { return t.capacity }

// Slot is one live entry with its tag, for deterministic enumeration.
type Slot struct {
	PCID  uint16
	VPN   uint64 // virtual page number (4 KiB or 2 MiB granularity)
	Huge  bool
	Entry Entry
}

// Entries returns every live entry sorted by (PCID, huge, VPN), so the
// audit-replay tests can compare reconstructed TLB contents against a
// live one deterministically.
func (t *TLB) Entries() []Slot {
	out := make([]Slot, 0, t.n)
	for pcid, sp := range t.spaces {
		for vpn, tg := range sp.entries {
			out = append(out, Slot{
				PCID: pcid, VPN: vpn &^ (1 << 63),
				Huge: vpn&(1<<63) != 0, Entry: tg.e,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PCID != b.PCID {
			return a.PCID < b.PCID
		}
		if a.Huge != b.Huge {
			return !a.Huge
		}
		return a.VPN < b.VPN
	})
	return out
}
