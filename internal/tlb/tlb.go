// Package tlb models a PCID-tagged translation lookaside buffer.
//
// The TLB caches completed walks keyed by (PCID, virtual page number).
// It is the mechanism behind two of the paper's experiments: the PCID
// isolation that keeps a malicious guest's invlpg from flushing other
// containers' entries (§4.1), and the one- vs two-dimensional walk cost
// gap measured by the TLB-miss-intensive applications of Table 4.
package tlb

import (
	"sort"

	"repro/internal/mem"
)

// Entry is a cached translation.
type Entry struct {
	PFN      mem.PFN // frame of the 4 KiB page containing the VA
	Writable bool
	User     bool
	NX       bool
	Global   bool
	Huge     bool
	PKey     int
}

type key struct {
	pcid uint16
	vpn  uint64
}

// Stats counts TLB events.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
	Evicts  uint64
}

// PCIDStat is the per-context slice of the hit/miss counters. The
// high byte of a guest PCID encodes the container, so these rows let
// the metrics registry attribute TLB behaviour per container context.
type PCIDStat struct {
	PCID   uint16
	Hits   uint64
	Misses uint64
}

// TLB is a finite, PCID-tagged TLB with FIFO replacement. The zero
// value is unusable; use New.
type TLB struct {
	capacity int
	entries  map[key]Entry
	fifo     []key
	stats    Stats
	perPCID  map[uint16]*PCIDStat
}

// DefaultCapacity approximates a modern L2 STLB (entries).
const DefaultCapacity = 2048

// New creates a TLB with the given entry capacity (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *TLB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &TLB{
		capacity: capacity,
		entries:  make(map[key]Entry, capacity),
		perPCID:  make(map[uint16]*PCIDStat),
	}
}

// Stats returns a copy of the event counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters (aggregate and per-PCID).
func (t *TLB) ResetStats() {
	t.stats = Stats{}
	t.perPCID = make(map[uint16]*PCIDStat)
}

func (t *TLB) pcidStat(pcid uint16) *PCIDStat {
	if t.perPCID == nil {
		t.perPCID = make(map[uint16]*PCIDStat)
	}
	st, ok := t.perPCID[pcid]
	if !ok {
		st = &PCIDStat{PCID: pcid}
		t.perPCID[pcid] = st
	}
	return st
}

// PCIDStats returns the per-context counters, sorted by PCID so output
// built from them is deterministic.
func (t *TLB) PCIDStats() []PCIDStat {
	out := make([]PCIDStat, 0, len(t.perPCID))
	for _, st := range t.perPCID {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PCID < out[j].PCID })
	return out
}

func vpn4k(va uint64) uint64 { return va >> mem.PageShift }
func vpn2m(va uint64) uint64 { return va >> 21 }

// Lookup searches for a translation of va in pcid. Huge (2 MiB) entries
// are checked after 4 KiB ones, as hardware probes both structures.
func (t *TLB) Lookup(pcid uint16, va uint64) (Entry, bool) {
	if e, ok := t.entries[key{pcid, vpn4k(va)}]; ok && !e.Huge {
		t.stats.Hits++
		t.pcidStat(pcid).Hits++
		return e, true
	}
	if e, ok := t.entries[key{pcid, vpn2m(va) | 1<<63}]; ok {
		t.stats.Hits++
		t.pcidStat(pcid).Hits++
		return e, true
	}
	t.stats.Misses++
	t.pcidStat(pcid).Misses++
	return Entry{}, false
}

// Insert caches a completed walk.
func (t *TLB) Insert(pcid uint16, va uint64, e Entry) {
	k := key{pcid, vpn4k(va)}
	if e.Huge {
		k = key{pcid, vpn2m(va) | 1<<63}
	}
	if _, exists := t.entries[k]; !exists {
		for len(t.entries) >= t.capacity && len(t.fifo) > 0 {
			victim := t.fifo[0]
			t.fifo = t.fifo[1:]
			if _, ok := t.entries[victim]; ok {
				delete(t.entries, victim)
				t.stats.Evicts++
			}
		}
		t.fifo = append(t.fifo, k)
	}
	t.entries[k] = e
}

// FlushPage invalidates the translations of va in pcid (invlpg).
func (t *TLB) FlushPage(pcid uint16, va uint64) {
	delete(t.entries, key{pcid, vpn4k(va)})
	delete(t.entries, key{pcid, vpn2m(va) | 1<<63})
	t.stats.Flushes++
}

// FlushPCID invalidates all entries of one PCID (invpcid single-context,
// or a CR3 load without the no-flush bit).
func (t *TLB) FlushPCID(pcid uint16) {
	for k := range t.entries {
		if k.pcid == pcid {
			delete(t.entries, k)
		}
	}
	t.stats.Flushes++
}

// FlushIf invalidates every entry whose PCID satisfies pred. The
// supervisor uses it to scrub all address spaces of one dead container
// (a whole PCID group) without knowing how many ASIDs the guest minted.
func (t *TLB) FlushIf(pred func(pcid uint16) bool) {
	for k := range t.entries {
		if pred(k.pcid) {
			delete(t.entries, k)
		}
	}
	t.stats.Flushes++
}

// CountIf reports how many live entries have a PCID satisfying pred
// (tests verify PCID-group flushes with it).
func (t *TLB) CountIf(pred func(pcid uint16) bool) int {
	n := 0
	for k := range t.entries {
		if pred(k.pcid) {
			n++
		}
	}
	return n
}

// FlushAll invalidates everything, optionally keeping global entries.
func (t *TLB) FlushAll(keepGlobal bool) {
	for k, e := range t.entries {
		if keepGlobal && e.Global {
			continue
		}
		delete(t.entries, k)
	}
	t.stats.Flushes++
}

// Len reports the number of live entries (for tests).
func (t *TLB) Len() int { return len(t.entries) }

// Capacity returns the configured entry capacity.
func (t *TLB) Capacity() int { return t.capacity }

// Slot is one live entry with its tag, for deterministic enumeration.
type Slot struct {
	PCID  uint16
	VPN   uint64 // virtual page number (4 KiB or 2 MiB granularity)
	Huge  bool
	Entry Entry
}

// Entries returns every live entry sorted by (PCID, huge, VPN), so the
// audit-replay tests can compare reconstructed TLB contents against a
// live one deterministically.
func (t *TLB) Entries() []Slot {
	out := make([]Slot, 0, len(t.entries))
	for k, e := range t.entries {
		out = append(out, Slot{
			PCID: k.pcid, VPN: k.vpn &^ (1 << 63),
			Huge: k.vpn&(1<<63) != 0, Entry: e,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PCID != b.PCID {
			return a.PCID < b.PCID
		}
		if a.Huge != b.Huge {
			return !a.Huge
		}
		return a.VPN < b.VPN
	})
	return out
}
