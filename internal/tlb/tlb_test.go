package tlb

import (
	"testing"

	"repro/internal/mem"
)

func TestLookupInsert(t *testing.T) {
	tl := New(16)
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(1, 0x1000, Entry{PFN: 42, Writable: true})
	e, ok := tl.Lookup(1, 0x1abc) // same page, different offset
	if !ok || e.PFN != 42 {
		t.Errorf("lookup = %+v %v, want PFN 42", e, ok)
	}
	if _, ok := tl.Lookup(2, 0x1000); ok {
		t.Error("cross-PCID hit")
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit 2 misses", s)
	}
}

func TestHugeEntryCoversRegion(t *testing.T) {
	tl := New(16)
	tl.Insert(3, 0x40000000, Entry{PFN: 100, Huge: true})
	if _, ok := tl.Lookup(3, 0x40000000+mem.HugePageSize-1); !ok {
		t.Error("huge entry missed within its 2MiB region")
	}
	if _, ok := tl.Lookup(3, 0x40000000+mem.HugePageSize); ok {
		t.Error("huge entry hit outside its region")
	}
}

func TestFlushPage(t *testing.T) {
	tl := New(16)
	tl.Insert(1, 0x1000, Entry{PFN: 1})
	tl.Insert(1, 0x2000, Entry{PFN: 2})
	tl.FlushPage(1, 0x1000)
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Error("flushed page still present")
	}
	if _, ok := tl.Lookup(1, 0x2000); !ok {
		t.Error("FlushPage removed unrelated entry")
	}
}

func TestFlushPCIDIsolation(t *testing.T) {
	// The property behind §4.1's PCID isolation: flushing one container's
	// context must leave other containers' entries intact.
	tl := New(64)
	tl.Insert(1, 0x1000, Entry{PFN: 1})
	tl.Insert(2, 0x1000, Entry{PFN: 2})
	tl.FlushPCID(1)
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Error("pcid 1 entry survived FlushPCID")
	}
	if _, ok := tl.Lookup(2, 0x1000); !ok {
		t.Error("pcid 2 entry lost to pcid 1 flush")
	}
}

func TestFlushAllKeepsGlobal(t *testing.T) {
	tl := New(16)
	tl.Insert(1, 0x1000, Entry{PFN: 1, Global: true})
	tl.Insert(1, 0x2000, Entry{PFN: 2})
	tl.FlushAll(true)
	if _, ok := tl.Lookup(1, 0x1000); !ok {
		t.Error("global entry flushed")
	}
	if _, ok := tl.Lookup(1, 0x2000); ok {
		t.Error("non-global entry kept")
	}
	tl.FlushAll(false)
	if tl.Len() != 0 {
		t.Error("FlushAll(false) left entries")
	}
}

func TestCapacityEviction(t *testing.T) {
	tl := New(4)
	for i := 0; i < 8; i++ {
		tl.Insert(1, uint64(i)*0x1000, Entry{PFN: mem.PFN(i)})
	}
	if tl.Len() > 4 {
		t.Errorf("TLB grew to %d entries, capacity 4", tl.Len())
	}
	if tl.Stats().Evicts == 0 {
		t.Error("no evictions counted")
	}
	// Most-recent insert must survive.
	if _, ok := tl.Lookup(1, 7*0x1000); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestReinsertDoesNotDuplicate(t *testing.T) {
	tl := New(4)
	for i := 0; i < 10; i++ {
		tl.Insert(1, 0x5000, Entry{PFN: mem.PFN(i)})
	}
	if tl.Len() != 1 {
		t.Errorf("Len = %d after re-inserting one page, want 1", tl.Len())
	}
	e, _ := tl.Lookup(1, 0x5000)
	if e.PFN != 9 {
		t.Errorf("stale entry %v, want PFN 9", e.PFN)
	}
}
