package tlb

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// fill loads n distinct 4 KiB entries for pcid starting at va 0.
func fill(tl *TLB, pcid uint16, n int) {
	for i := 0; i < n; i++ {
		tl.Insert(pcid, uint64(i)<<mem.PageShift, Entry{PFN: mem.PFN(i)})
	}
}

// BenchmarkTLBLookupInsertFlush covers the four TLB operations every
// simulated memory access can pay. All of them must stay allocation-free
// in steady state (TestTLBHotPathAllocs pins that).
func BenchmarkTLBLookupInsertFlush(b *testing.B) {
	b.Run("LookupHit", func(b *testing.B) {
		tl := New(DefaultCapacity)
		fill(tl, 1, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tl.Lookup(1, uint64(i%1024)<<mem.PageShift)
		}
	})
	b.Run("LookupMiss", func(b *testing.B) {
		tl := New(DefaultCapacity)
		fill(tl, 1, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tl.Lookup(1, uint64(1<<30)+uint64(i%1024)<<mem.PageShift)
		}
	})
	b.Run("InsertEvict", func(b *testing.B) {
		tl := New(DefaultCapacity)
		fill(tl, 1, 2*DefaultCapacity) // warm to steady-state eviction
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tl.Insert(1, uint64(2*DefaultCapacity+i)<<mem.PageShift, Entry{PFN: 1})
		}
	})
	b.Run("FlushPage", func(b *testing.B) {
		tl := New(DefaultCapacity)
		fill(tl, 1, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			va := uint64(i%1024) << mem.PageShift
			tl.FlushPage(1, va)
			tl.Insert(1, va, Entry{PFN: 1})
		}
	})
	b.Run("FlushPCID", func(b *testing.B) {
		tl := New(DefaultCapacity)
		fill(tl, 1, DefaultCapacity/2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A small victim context amid a half-full TLB: the single-
			// context flush the shootdown remote handlers run.
			tl.Insert(9, uint64(i)<<mem.PageShift, Entry{PFN: 1})
			tl.FlushPCID(9)
		}
	})
}

// BenchmarkTLBFlushPCIDByCapacity is the regression benchmark for the
// old O(total-entries) single-context flush: flushing a 64-entry
// context must cost the same whether the TLB holds 2 Ki or 64 Ki other
// entries. Before the per-PCID index this scaled linearly with
// occupancy (the flush walked the whole flat map).
func BenchmarkTLBFlushPCIDByCapacity(b *testing.B) {
	for _, capacity := range []int{2048, 16384, 65536} {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			tl := New(capacity)
			fill(tl, 1, capacity-128) // background occupancy in another context
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 64; j++ {
					tl.Insert(9, uint64(j)<<mem.PageShift, Entry{PFN: 1})
				}
				tl.FlushPCID(9)
			}
		})
	}
}

// TestTLBHotPathAllocs pins the steady-state hot paths at zero
// allocations per operation — the wall-clock optimization contract.
func TestTLBHotPathAllocs(t *testing.T) {
	tl := New(DefaultCapacity)
	fill(tl, 1, 10*DefaultCapacity) // reach eviction steady state
	next := uint64(10 * DefaultCapacity)

	if n := testing.AllocsPerRun(1000, func() {
		tl.Lookup(1, (next-1)<<mem.PageShift)
	}); n != 0 {
		t.Errorf("Lookup(hit) allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tl.Lookup(1, 1<<40)
	}); n != 0 {
		t.Errorf("Lookup(miss) allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tl.Insert(1, next<<mem.PageShift, Entry{PFN: 1})
		next++
	}); n != 0 {
		t.Errorf("Insert(evict) allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tl.FlushPage(1, (next-1)<<mem.PageShift)
		tl.Insert(1, (next-1)<<mem.PageShift, Entry{PFN: 1})
	}); n != 0 {
		t.Errorf("FlushPage allocs/op = %v, want 0", n)
	}
}

// TestTLBTombstoneCompaction drives the flush-then-reinsert pattern
// that used to grow the FIFO without bound (flushed entries left their
// keys queued forever when the working set never reached capacity) and
// checks the ring stays bounded while behaviour stays correct.
func TestTLBTombstoneCompaction(t *testing.T) {
	tl := New(256)
	for round := 0; round < 100; round++ {
		for i := 0; i < 64; i++ {
			tl.Insert(1, uint64(i)<<mem.PageShift, Entry{PFN: mem.PFN(i)})
		}
		for i := 0; i < 64; i++ {
			tl.FlushPage(1, uint64(i)<<mem.PageShift)
		}
	}
	if got := len(tl.ring); got > 4*256 {
		t.Errorf("ring grew to %d slots under flush churn, want bounded by 4x capacity", got)
	}
	if tl.Len() != 0 {
		t.Errorf("Len = %d after flushing everything, want 0", tl.Len())
	}
	// The structure must still evict correctly afterwards.
	for i := 0; i < 512; i++ {
		tl.Insert(2, uint64(i)<<mem.PageShift, Entry{PFN: mem.PFN(i)})
	}
	if tl.Len() != 256 {
		t.Errorf("Len = %d after overfilling, want capacity 256", tl.Len())
	}
	if _, ok := tl.Lookup(2, 511<<mem.PageShift); !ok {
		t.Error("most recent entry missing after compaction-era eviction")
	}
}

// TestTLBFIFOOrderSurvivesFlush checks eviction order stays insertion
// order with tombstones interleaved: flushing an old entry must not
// perturb which of the remaining entries evicts first.
func TestTLBFIFOOrderSurvivesFlush(t *testing.T) {
	tl := New(4)
	for i := 0; i < 4; i++ {
		tl.Insert(1, uint64(i)<<mem.PageShift, Entry{PFN: mem.PFN(i)})
	}
	tl.FlushPage(1, 0) // oldest becomes a tombstone
	tl.Insert(1, 10<<mem.PageShift, Entry{PFN: 10})
	// Capacity again: inserting must evict page 1 (the oldest live), not
	// page 2 or the refilled slot.
	tl.Insert(1, 11<<mem.PageShift, Entry{PFN: 11})
	if _, ok := tl.Lookup(1, 1<<mem.PageShift); ok {
		t.Error("oldest live entry (page 1) survived eviction")
	}
	for _, vpn := range []uint64{2, 3, 10, 11} {
		if _, ok := tl.Lookup(1, vpn<<mem.PageShift); !ok {
			t.Errorf("page %d evicted out of FIFO order", vpn)
		}
	}
}
