// Package telemetry is the live-observability layer of the simulator:
// a deterministic time-series pipeline on the shared virtual clock.
//
// A Store scrapes any metrics.Registry at a fixed virtual interval
// into per-series ring-buffered windows — counter deltas, gauge
// values, and histogram-derived windowed quantiles — with canonical
// JSON and binary exports. An Engine evaluates declarative SLO specs
// over those windows with multi-window fast/slow burn-rate rules,
// emitting alert events stamped with virtual time and labels. A
// FlightRecorder keeps a bounded ring of recent spans and audit
// records and dumps a postmortem bundle around the instant an alert
// fires or the supervisor watchdog trips.
//
// Everything here follows the zero-cost observer contract of
// trace/metrics/audit: scraping reads the virtual clock but never
// advances it, so attaching telemetry changes nothing measured, and
// every artifact is a pure function of the seeded workload — two runs
// produce byte-identical exports, and Store.Merge in the fixed
// sequential cell order reproduces a sequential run's bytes at any
// host parallelism.
package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// Window is one scrape interval's sample of one series. The meaningful
// fields depend on the series kind: counters fill Delta (increase over
// the window) and Total (cumulative value at the window's end), gauges
// fill Value (instantaneous), histograms fill Count (samples landing
// in the window), Total (cumulative samples), and the windowed P50Ns /
// P99Ns quantile estimates.
type Window struct {
	Tick  int     `json:"tick"`
	AtNs  int64   `json:"at_ns"`
	Delta float64 `json:"delta,omitempty"`
	Value float64 `json:"value,omitempty"`
	Total float64 `json:"total,omitempty"`
	Count uint64  `json:"count,omitempty"`
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// Series is one scraped time series: a metric identity plus its ring
// of recent windows. FirstTick names the tick Windows[0] holds once
// ring eviction has dropped older windows.
type Series struct {
	Name      string            `json:"name"`
	Kind      string            `json:"kind"`
	Labels    map[string]string `json:"labels,omitempty"`
	FirstTick int               `json:"first_tick"`
	Windows   []Window          `json:"windows"`

	key        string
	prevTotal  float64
	prevCounts []uint64
	prevInf    uint64
	prevN      uint64
	bounds     []int64
}

// Window at tick, or nil if it has been evicted or not yet scraped.
// Safe on a nil receiver (a failed Lookup chains straight into At).
func (s *Series) At(tick int) *Window {
	if s == nil {
		return nil
	}
	i := tick - s.FirstTick
	if i < 0 || i >= len(s.Windows) {
		return nil
	}
	return &s.Windows[i]
}

// seriesKey builds the store identity of a metric series. Labels
// arrive from metrics.Registry.Visit already sorted by key.
func seriesKey(name string, labels []metrics.Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Store is the ring-buffered time-series store. Scrape it at a fixed
// virtual interval; it keeps the last Depth windows per series.
type Store struct {
	// Interval is the virtual time between scrapes; Depth the per-series
	// window ring size.
	Interval clock.Time
	Depth    int

	series []*Series
	byKey  map[string]*Series
	ticks  int
	lastAt clock.Time
}

// DefaultDepth is the per-series window ring size when NewStore gets 0.
const DefaultDepth = 512

// NewStore creates a store sampling every interval of virtual time.
func NewStore(interval clock.Time, depth int) *Store {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Store{Interval: interval, Depth: depth, byKey: map[string]*Series{}}
}

// Ticks reports how many scrapes the store has taken.
func (st *Store) Ticks() int { return st.ticks }

// LastAt reports the virtual time of the most recent scrape.
func (st *Store) LastAt() clock.Time { return st.lastAt }

// Series returns the stored series in first-seen order (the live
// slice; callers must not mutate).
func (st *Store) Series() []*Series { return st.series }

// Lookup finds the series with the given name whose labels include
// every key=value in sel (nil sel matches the first series of that
// name), in first-seen order; nil if none.
func (st *Store) Lookup(name string, sel map[string]string) *Series {
	for _, s := range st.series {
		if s.Name == name && labelsMatch(s.Labels, sel) {
			return s
		}
	}
	return nil
}

func labelsMatch(have, sel map[string]string) bool {
	for k, v := range sel {
		if have[k] != v {
			return false
		}
	}
	return true
}

func (st *Store) get(name, kind string, labels []metrics.Label) *Series {
	key := seriesKey(name, labels)
	if s, ok := st.byKey[key]; ok {
		return s
	}
	s := &Series{Name: name, Kind: kind, key: key}
	if len(labels) > 0 {
		s.Labels = make(map[string]string, len(labels))
		for _, l := range labels {
			s.Labels[l.Key] = l.Value
		}
	}
	st.byKey[key] = s
	st.series = append(st.series, s)
	return s
}

func (s *Series) push(w Window, depth int) {
	if len(s.Windows) >= depth {
		drop := len(s.Windows) - depth + 1
		s.Windows = append(s.Windows[:0], s.Windows[drop:]...)
		s.FirstTick += drop
	}
	s.Windows = append(s.Windows, w)
}

// Scrape samples every series in reg into one new window per series,
// stamped with the current virtual time. A series first seen mid-run
// gets its whole cumulative value as the first window's delta. Pure
// observation: the registry is only read.
func (st *Store) Scrape(reg *metrics.Registry, now clock.Time) {
	tick := st.ticks
	st.ticks++
	st.lastAt = now
	atNs := int64(now / clock.Nanosecond)
	reg.Visit(func(v metrics.SeriesView) {
		s := st.get(v.Name, v.Kind, v.Labels)
		w := Window{Tick: tick, AtNs: atNs}
		switch v.Kind {
		case "counter":
			total := float64(v.Counter)
			w.Total = total
			w.Delta = total - s.prevTotal
			s.prevTotal = total
		case "gauge":
			w.Value = v.Value
		case "histogram":
			if s.prevCounts == nil {
				s.prevCounts = make([]uint64, len(v.Counts))
				s.bounds = v.Bounds
			}
			deltas := make([]uint64, len(v.Counts))
			for i, c := range v.Counts {
				deltas[i] = c - s.prevCounts[i]
				s.prevCounts[i] = c
			}
			infDelta := v.Inf - s.prevInf
			s.prevInf = v.Inf
			w.Count = v.Count - s.prevN
			s.prevN = v.Count
			w.Total = float64(v.Count)
			if w.Count > 0 {
				w.P50Ns = WindowQuantile(v.Bounds, deltas, infDelta, 0.5)
				w.P99Ns = WindowQuantile(v.Bounds, deltas, infDelta, 0.99)
			}
		}
		s.push(w, st.Depth)
	})
}

// WindowQuantile estimates the q-th quantile (0 < q <= 1), in
// nanoseconds, of the histogram samples that landed in one scrape
// window, given the per-bucket count deltas for that window. The
// estimate interpolates linearly inside the containing bucket
// (Prometheus histogram_quantile semantics); a rank landing in the
// +Inf bucket reports the highest finite bound. Zero samples yield 0.
func WindowQuantile(bounds []int64, deltas []uint64, infDelta uint64, q float64) float64 {
	var total uint64
	for _, d := range deltas {
		total += d
	}
	total += infDelta
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// rank = ceil(q * total), in 1..total, with integer math.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	lo := float64(0)
	for i, d := range deltas {
		if rank <= cum+d {
			up := float64(bounds[i])
			if d == 0 {
				return up
			}
			return lo + (up-lo)*float64(rank-cum)/float64(d)
		}
		cum += d
		lo = float64(bounds[i])
	}
	// Landed in the +Inf bucket: the best bounded answer is the
	// highest finite bound.
	if len(bounds) == 0 {
		return 0
	}
	return float64(bounds[len(bounds)-1])
}

// Merge folds src into st: series register in src's first-seen order
// and their windows append after st's. Merging per-cell stores in the
// fixed sequential cell order therefore reproduces the series order
// and bytes a single sequential store would have. The intervals must
// agree.
func (st *Store) Merge(src *Store) {
	if src == nil {
		return
	}
	if st.Interval != src.Interval {
		panic(fmt.Sprintf("telemetry: Merge interval mismatch: %v vs %v", st.Interval, src.Interval))
	}
	for _, ss := range src.series {
		ds, ok := st.byKey[ss.key]
		if !ok {
			ds = &Series{Name: ss.Name, Kind: ss.Kind, Labels: ss.Labels,
				FirstTick: ss.FirstTick, key: ss.key}
			st.byKey[ss.key] = ds
			st.series = append(st.series, ds)
		}
		for _, w := range ss.Windows {
			ds.push(w, st.Depth)
		}
	}
	if src.ticks > st.ticks {
		st.ticks = src.ticks
	}
	if src.lastAt > st.lastAt {
		st.lastAt = src.lastAt
	}
}

// Export is the JSON-ready snapshot of a store.
type Export struct {
	IntervalNs int64     `json:"interval_ns"`
	Depth      int       `json:"depth"`
	Ticks      int       `json:"ticks"`
	Series     []*Series `json:"series"`
}

// Export snapshots the store for JSON rendering.
func (st *Store) Export() *Export {
	series := st.series
	if series == nil {
		series = []*Series{}
	}
	return &Export{
		IntervalNs: int64(st.Interval / clock.Nanosecond),
		Depth:      st.Depth,
		Ticks:      st.ticks,
		Series:     series,
	}
}

// JSON renders the export as deterministic indented JSON.
func (e *Export) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}
