package telemetry

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// FuzzDecodeBinary holds the CKITS1 decoder to the same hostile-input
// contract as the snapshot and audit parsers: torn, truncated, or
// forged bytes must produce a *DecodeError — never a panic — and
// anything the decoder does accept must re-encode byte-identically.
func FuzzDecodeBinary(f *testing.F) {
	reg := metrics.NewRegistry()
	c := reg.Counter("reqs_total", "", metrics.L("runtime", "cki"))
	g := reg.Gauge("running", "")
	h := reg.Histogram("lat_ns", "", []int64{100, 200})
	st := NewStore(2*clock.Microsecond, 8)
	scrapeN(st, reg, 4, func(tick int) {
		c.Add(3)
		g.Set(float64(tick))
		h.Observe(clock.Time(50*(tick+1)) * clock.Nanosecond)
	})
	enc := st.EncodeBinary()
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte("CKITS1\x00\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeBinary(data)
		if err != nil {
			if _, ok := err.(*DecodeError); !ok {
				t.Fatalf("error %T is not *DecodeError: %v", err, err)
			}
			return
		}
		re := dec.EncodeBinary()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input does not re-encode identically (%d vs %d bytes)", len(re), len(data))
		}
	})
}
