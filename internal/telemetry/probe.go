package telemetry

import (
	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// FleetProbe is the canonical fleet.Observer: it turns control-plane
// events into registry instruments and, at every scrape point, samples
// the registry into a Store and steps the SLO engine. The dependency
// points this way on purpose — fleet never imports telemetry, it only
// defines the Observer seam.

// FleetLatencyBuckets covers fleet arrival-to-completion latencies
// (microseconds of boot + service up to storm-inflated queueing), in
// nanoseconds. metrics.DefaultLatencyBuckets tops out at 65µs — too
// low for a container lifetime under a storm.
var FleetLatencyBuckets = []int64{
	1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17,
	1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22, 1 << 23, 1 << 24,
}

// FleetProbe implements fleet.Observer over a registry, a store, and
// an optional SLO engine. Pure observation end to end: it mutates only
// its own instruments, so the fleet Result is identical with or
// without it.
type FleetProbe struct {
	Reg    *metrics.Registry
	Store  *Store
	Engine *Engine

	arrivals  *metrics.Counter
	completed *metrics.Counter
	rejected  *metrics.Counter
	evicted   [3]*metrics.Counter // indexed by fleet.EvictOutcome
	evictions *metrics.Counter    // all outcomes, for ratio denominators
	warm      *metrics.Counter
	latency   *metrics.Histogram
	running   *metrics.Gauge
	queued    *metrics.Gauge
	downNodes *metrics.Gauge
	labels    []metrics.Label
	perNode   map[int][2]*metrics.Gauge
}

// NewFleetProbe builds a probe whose series all carry the given labels
// (typically the runtime name). engine may be nil for scrape-only use.
func NewFleetProbe(reg *metrics.Registry, store *Store, engine *Engine, labels ...metrics.Label) *FleetProbe {
	p := &FleetProbe{Reg: reg, Store: store, Engine: engine,
		labels: labels, perNode: map[int][2]*metrics.Gauge{}}
	p.arrivals = reg.Counter("fleet_arrivals_total", "open-loop arrivals", labels...)
	p.completed = reg.Counter("fleet_completed_total", "containers completed", labels...)
	p.rejected = reg.Counter("fleet_rejected_total", "arrivals rejected by admission control", labels...)
	for _, o := range []fleet.EvictOutcome{fleet.EvictWarm, fleet.EvictCold, fleet.EvictRequeued} {
		lb := append(append([]metrics.Label(nil), labels...), metrics.L("outcome", o.String()))
		p.evicted[o] = reg.Counter("fleet_evicted_total", "storm-displaced container instances", lb...)
	}
	// The outcome-free aggregates exist so ratio SLOs (numerator and
	// denominator with identical labels) can target evictions.
	p.evictions = reg.Counter("fleet_evictions_total", "storm-displaced container instances (all outcomes)", labels...)
	p.warm = reg.Counter("fleet_warm_restores_total", "displaced instances restored warm from a snapshot", labels...)
	p.latency = reg.Histogram("fleet_latency_ns", "arrival-to-completion latency", FleetLatencyBuckets, labels...)
	p.running = reg.Gauge("fleet_running", "containers running fleet-wide", labels...)
	p.queued = reg.Gauge("fleet_queued", "containers queued fleet-wide", labels...)
	p.downNodes = reg.Gauge("fleet_down_nodes", "nodes currently down", labels...)
	return p
}

// EnableExemplars opts the probe's latency histogram into per-bucket
// request-ID exemplars (the tail experiment's link from buckets back
// to concrete traces). Off by default so fleet/slo renders keep their
// exact bytes.
func (p *FleetProbe) EnableExemplars() { p.latency.EnableExemplars() }

// LatencyExemplars returns the latency histogram's recorded exemplars.
func (p *FleetProbe) LatencyExemplars() []metrics.Exemplar { return p.latency.Exemplars() }

// Arrival implements fleet.Observer.
func (p *FleetProbe) Arrival(now clock.Time) { p.arrivals.Inc() }

// Completed implements fleet.Observer. The exemplar call degrades to a
// plain Observe unless the latency histogram opted into exemplars, so
// renders stay byte-identical for probes that never asked for them.
func (p *FleetProbe) Completed(now clock.Time, node int, id trace.RequestID, latency clock.Time) {
	p.completed.Inc()
	p.latency.ObserveExemplar(latency, uint64(id))
}

// Rejected implements fleet.Observer.
func (p *FleetProbe) Rejected(now clock.Time) { p.rejected.Inc() }

// Evicted implements fleet.Observer.
func (p *FleetProbe) Evicted(now clock.Time, node int, outcome fleet.EvictOutcome) {
	if int(outcome) < len(p.evicted) {
		p.evicted[outcome].Inc()
	}
	p.evictions.Inc()
	if outcome == fleet.EvictWarm {
		p.warm.Inc()
	}
}

// Scrape implements fleet.Observer: refresh the pressure gauges, then
// sample the registry into the store and step the SLO engine.
func (p *FleetProbe) Scrape(now clock.Time, nodes []fleet.Pressure) {
	var running, queued, down int
	for _, n := range nodes {
		running += n.Running
		queued += n.Queued
		if n.Down {
			down++
		}
		g, ok := p.perNode[n.Node]
		if !ok {
			lb := append(append([]metrics.Label(nil), p.labels...), metrics.NodeLabel(n.Node))
			g = [2]*metrics.Gauge{
				p.Reg.Gauge("fleet_node_running", "containers running on node", lb...),
				p.Reg.Gauge("fleet_node_queued", "containers queued on node", lb...),
			}
			p.perNode[n.Node] = g
		}
		g[0].Set(float64(n.Running))
		g[1].Set(float64(n.Queued))
	}
	p.running.Set(float64(running))
	p.queued.Set(float64(queued))
	p.downNodes.Set(float64(down))
	if p.Store != nil {
		p.Store.Scrape(p.Reg, now)
		if p.Engine != nil {
			p.Engine.Step(p.Store, now)
		}
	}
}

var _ fleet.Observer = (*FleetProbe)(nil)
