package telemetry

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// scrapeN drives reg through n scrapes at the given interval, calling
// fill(tick) before each to mutate the instruments.
func scrapeN(st *Store, reg *metrics.Registry, n int, fill func(int)) {
	for i := 0; i < n; i++ {
		if fill != nil {
			fill(i)
		}
		st.Scrape(reg, clock.Time(i+1)*st.Interval)
	}
}

// TestScrapeKinds: counters scrape as deltas+totals, gauges as values,
// histograms as windowed counts with quantiles.
func TestScrapeKinds(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("reqs_total", "")
	g := reg.Gauge("depth", "")
	h := reg.Histogram("lat_ns", "", []int64{100, 200, 400})
	st := NewStore(clock.Microsecond, 0)
	scrapeN(st, reg, 3, func(tick int) {
		c.Add(uint64(10 * (tick + 1)))
		g.Set(float64(tick) * 2)
		for i := 0; i < 4; i++ {
			h.Observe(150 * clock.Nanosecond)
		}
	})

	cs := st.Lookup("reqs_total", nil)
	if cs == nil || len(cs.Windows) != 3 {
		t.Fatalf("counter series missing or wrong length: %+v", cs)
	}
	// Adds were 10, 20, 30 → deltas 10, 20, 30; totals 10, 30, 60.
	for i, want := range []float64{10, 20, 30} {
		if cs.Windows[i].Delta != want {
			t.Errorf("window %d delta = %g, want %g", i, cs.Windows[i].Delta, want)
		}
	}
	if cs.Windows[2].Total != 60 {
		t.Errorf("final total = %g, want 60", cs.Windows[2].Total)
	}
	gs := st.Lookup("depth", nil)
	if gs.Windows[2].Value != 4 {
		t.Errorf("gauge window = %g, want 4", gs.Windows[2].Value)
	}
	hs := st.Lookup("lat_ns", nil)
	w := hs.Windows[1]
	if w.Count != 4 {
		t.Errorf("histogram window count = %d, want 4", w.Count)
	}
	// All 4 samples in the (100, 200] bucket: both quantiles inside it.
	if w.P50Ns <= 100 || w.P50Ns > 200 || w.P99Ns <= 100 || w.P99Ns > 200 {
		t.Errorf("windowed quantiles outside the sample bucket: p50=%g p99=%g", w.P50Ns, w.P99Ns)
	}
	if w.AtNs != int64(2*clock.Microsecond/clock.Nanosecond) {
		t.Errorf("window stamped %dns", w.AtNs)
	}
}

// TestRingEviction: the store keeps exactly Depth windows per series
// and FirstTick tracks what was dropped.
func TestRingEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("x", "")
	st := NewStore(clock.Microsecond, 4)
	scrapeN(st, reg, 10, func(int) { c.Inc() })
	s := st.Lookup("x", nil)
	if len(s.Windows) != 4 {
		t.Fatalf("ring holds %d windows, want 4", len(s.Windows))
	}
	if s.FirstTick != 6 {
		t.Fatalf("FirstTick = %d, want 6", s.FirstTick)
	}
	if s.At(5) != nil {
		t.Fatalf("evicted window still addressable")
	}
	if w := s.At(9); w == nil || w.Total != 10 {
		t.Fatalf("latest window wrong: %+v", w)
	}
	// Totals stay cumulative across evictions.
	if s.Windows[0].Total != 7 || s.Windows[0].Delta != 1 {
		t.Fatalf("post-eviction window 0: %+v", s.Windows[0])
	}
}

// TestWindowQuantileVsExact pins the windowed estimator against exact
// sorted-sample quantiles: for every sample count and quantile, the
// estimate must land inside the bucket that contains the exact answer.
func TestWindowQuantileVsExact(t *testing.T) {
	bounds := []int64{64, 128, 256, 512, 1024, 2048, 4096}
	rng := uint64(0x5eed)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for _, n := range []int{1, 2, 3, 5, 10, 100, 1000} {
		samples := make([]int64, n)
		deltas := make([]uint64, len(bounds))
		var inf uint64
		for i := range samples {
			// Spread samples across the bucket range, some past the end.
			samples[i] = int64(next() % 5000)
			placed := false
			for bi, ub := range bounds {
				if samples[i] <= ub {
					deltas[bi]++
					placed = true
					break
				}
			}
			if !placed {
				inf++
			}
		}
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range []float64{0.5, 0.99, 0.999, 1} {
			got := WindowQuantile(bounds, deltas, inf, q)
			idx := int(q*float64(n)+0.999999) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			exact := sorted[idx]
			// Find the bucket holding the exact answer; the estimate must
			// fall inside it ((lo, hi]), or equal the top finite bound
			// when the exact answer overflows every bucket.
			lo, hi := int64(0), int64(-1)
			for _, ub := range bounds {
				if exact <= ub {
					hi = ub
					break
				}
				lo = ub
			}
			if hi == -1 {
				if got != float64(bounds[len(bounds)-1]) {
					t.Errorf("n=%d q=%g: exact %d overflows, estimate %g != top bound", n, q, exact, got)
				}
				continue
			}
			if got <= float64(lo) || got > float64(hi) {
				t.Errorf("n=%d q=%g: exact %d in (%d, %d], estimate %g outside", n, q, exact, lo, hi, got)
			}
		}
		for i := range deltas {
			deltas[i] = 0
		}
		inf = 0
	}
	if WindowQuantile(bounds, make([]uint64, len(bounds)), 0, 0.99) != 0 {
		t.Errorf("empty window quantile != 0")
	}
}

// TestMergeReproducesSequential: merging per-cell stores in cell order
// yields byte-identical exports to one sequential store that saw the
// same scrapes in the same order.
func TestMergeReproducesSequential(t *testing.T) {
	cell := func(runtime string) *Store {
		reg := metrics.NewRegistry()
		c := reg.Counter("reqs_total", "", metrics.L("runtime", runtime))
		st := NewStore(clock.Microsecond, 0)
		scrapeN(st, reg, 5, func(tick int) { c.Add(uint64(tick + 1)) })
		return st
	}
	seq := NewStore(clock.Microsecond, 0)
	for _, r := range []string{"runc", "cki", "gvisor"} {
		seq.Merge(cell(r))
	}
	// "Parallel": build the cells in a different order, merge in the
	// same fixed order.
	cells := map[string]*Store{}
	for _, r := range []string{"gvisor", "runc", "cki"} {
		cells[r] = cell(r)
	}
	par := NewStore(clock.Microsecond, 0)
	for _, r := range []string{"runc", "cki", "gvisor"} {
		par.Merge(cells[r])
	}
	a, err := seq.Export().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Export().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("merge order-dependent:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Equal(seq.EncodeBinary(), par.EncodeBinary()) {
		t.Fatalf("binary encodings differ")
	}
}

// TestBinaryRoundTrip: encode → decode → encode is byte-identical, and
// corruption is caught with typed errors.
func TestBinaryRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("reqs_total", "", metrics.L("runtime", "cki"), metrics.L("node", "3"))
	h := reg.Histogram("lat_ns", "", []int64{100, 200})
	st := NewStore(2*clock.Microsecond, 8)
	scrapeN(st, reg, 5, func(tick int) {
		c.Add(3)
		h.Observe(clock.Time(50*(tick+1)) * clock.Nanosecond)
	})
	enc := st.EncodeBinary()
	dec, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.EncodeBinary(), enc) {
		t.Fatalf("round trip not byte-identical")
	}
	if dec.Interval != st.Interval || dec.Ticks() != st.Ticks() {
		t.Fatalf("header fields lost: %v/%d vs %v/%d", dec.Interval, dec.Ticks(), st.Interval, st.Ticks())
	}
	if s := dec.Lookup("reqs_total", map[string]string{"node": "3"}); s == nil || s.Windows[4].Total != 15 {
		t.Fatalf("decoded series wrong: %+v", s)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)-9] },
		"bit flip":      func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"bad magic":     func(b []byte) []byte { b[0] = 'X'; return b },
		"flipped count": func(b []byte) []byte { b[20] ^= 0x80; return b },
		"empty":         func(b []byte) []byte { return b[:0] },
	} {
		bad := mutate(append([]byte(nil), enc...))
		if _, err := DecodeBinary(bad); err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if _, ok := err.(*DecodeError); !ok {
			t.Errorf("%s: error %T is not *DecodeError", name, err)
		}
	}
}

// TestSLOFireResolve: a burn-rate alert fires only once both windows
// burn, stays open while the violation persists, and resolves when the
// short window recovers.
func TestSLOFireResolve(t *testing.T) {
	reg := metrics.NewRegistry()
	bad := reg.Counter("bad_total", "", metrics.L("runtime", "cki"))
	all := reg.Counter("all_total", "", metrics.L("runtime", "cki"))
	eng, err := NewEngine([]SLOSpec{{
		Name: "reject-rate", Metric: "bad_total", TotalMetric: "all_total",
		Threshold: 0.1, Budget: 0.1,
		Rules: []BurnRule{{Severity: "page", Long: 4, Short: 2, Burn: 2.5}},
		Curve: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	var fired []*Alert
	eng.OnAlert = func(a *Alert) { fired = append(fired, a) }
	st := NewStore(clock.Microsecond, 0)

	// Ticks 0-3 healthy, 4-9 violating (50% bad), 10-15 healthy again.
	badAt := func(tick int) bool { return tick >= 4 && tick <= 9 }
	for tick := 0; tick < 16; tick++ {
		all.Add(100)
		if badAt(tick) {
			bad.Add(50)
		}
		now := clock.Time(tick+1) * clock.Microsecond
		st.Scrape(reg, now)
		eng.Step(st, now)
	}

	alerts := eng.Alerts()
	if len(alerts) != 1 || len(fired) != 1 {
		t.Fatalf("got %d alerts (%d callbacks), want 1", len(alerts), len(fired))
	}
	a := alerts[0]
	if a.SLO != "reject-rate" || a.Severity != "page" || a.Labels["runtime"] != "cki" {
		t.Fatalf("alert identity wrong: %+v", a)
	}
	// The first violating window (tick 4, scraped at 5µs) already
	// burns both windows past 2.5 at budget 0.1: short = 1/2/0.1 = 5,
	// long = 1/4/0.1 = 2.5.
	if a.FiredAtNs != 5000 {
		t.Errorf("fired at %dns, want 5000", a.FiredAtNs)
	}
	// Short window clears two ticks after the violation stops.
	if a.ResolvedAtNs == 0 || a.ResolvedAtNs <= a.FiredAtNs {
		t.Errorf("alert never resolved: %+v", a)
	}
	curve := eng.Curves()["reject-rate"]
	if len(curve) != 16 {
		t.Fatalf("curve has %d points, want 16", len(curve))
	}
	var peak float64
	for _, p := range curve {
		if p.Short > peak {
			peak = p.Short
		}
	}
	if peak < 2.5 {
		t.Errorf("curve never shows the burn that fired the alert: peak %g", peak)
	}
}

// TestSLOInvertAndQuantile: inverted (at-least) objectives and
// histogram-quantile SLIs classify windows correctly.
func TestSLOInvertAndQuantile(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lat_ns", "", []int64{100, 1000, 10000})
	warm := reg.Counter("warm_total", "")
	ev := reg.Counter("ev_total", "")
	eng, err := NewEngine([]SLOSpec{
		{Name: "p99-latency", Metric: "lat_ns", Quantile: 0.99,
			Threshold: 1000, Budget: 0.5,
			Rules: []BurnRule{{Severity: "page", Long: 2, Short: 1, Burn: 1}}},
		{Name: "warm-ratio", Metric: "warm_total", TotalMetric: "ev_total",
			Threshold: 0.5, Invert: true, Budget: 0.5,
			Rules: []BurnRule{{Severity: "ticket", Long: 2, Short: 1, Burn: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(clock.Microsecond, 0)
	step := func(tick int, lat clock.Time, w, e uint64) {
		h.Observe(lat)
		warm.Add(w)
		ev.Add(e)
		now := clock.Time(tick+1) * clock.Microsecond
		st.Scrape(reg, now)
		eng.Step(st, now)
	}
	step(0, 50*clock.Nanosecond, 5, 5)    // healthy, all-warm
	step(1, 5000*clock.Nanosecond, 1, 5)  // slow p99, warm ratio 0.2
	step(2, 5000*clock.Nanosecond, 1, 10) // still bad both ways
	var latFired, warmFired bool
	for _, a := range eng.Alerts() {
		switch a.SLO {
		case "p99-latency":
			latFired = true
		case "warm-ratio":
			warmFired = true
		}
	}
	if !latFired {
		t.Errorf("quantile SLO never fired despite 5µs p99 over a 1µs threshold")
	}
	if !warmFired {
		t.Errorf("inverted ratio SLO never fired despite warm ratio 0.2 under 0.5 floor")
	}
	// No-signal windows are good: an idle engine on an empty store
	// fires nothing.
	idle, _ := NewEngine([]SLOSpec{{Name: "x", Metric: "lat_ns", Quantile: 0.99,
		Threshold: 1, Budget: 0.5, Rules: []BurnRule{{Severity: "page", Long: 1, Short: 1, Burn: 0.1}}}})
	st2 := NewStore(clock.Microsecond, 0)
	reg2 := metrics.NewRegistry()
	reg2.Histogram("lat_ns", "", []int64{100})
	for i := 0; i < 5; i++ {
		now := clock.Time(i+1) * clock.Microsecond
		st2.Scrape(reg2, now)
		idle.Step(st2, now)
	}
	if len(idle.Alerts()) != 0 {
		t.Errorf("idle histogram fired %d alerts", len(idle.Alerts()))
	}
}

// TestEngineValidation: NewEngine rejects malformed specs.
func TestEngineValidation(t *testing.T) {
	good := SLOSpec{Name: "ok", Metric: "m", Threshold: 1, Budget: 0.1,
		Rules: []BurnRule{{Severity: "page", Long: 2, Short: 1, Burn: 1}}}
	for name, breakIt := range map[string]func(*SLOSpec){
		"no metric":     func(s *SLOSpec) { s.Metric = "" },
		"bad quantile":  func(s *SLOSpec) { s.Quantile = 0.95 },
		"zero budget":   func(s *SLOSpec) { s.Budget = 0 },
		"budget over 1": func(s *SLOSpec) { s.Budget = 1.5 },
		"no rules":      func(s *SLOSpec) { s.Rules = nil },
		"short > long":  func(s *SLOSpec) { s.Rules = []BurnRule{{Long: 1, Short: 2, Burn: 1}} },
		"zero burn":     func(s *SLOSpec) { s.Rules = []BurnRule{{Long: 2, Short: 1}} },
	} {
		sp := good
		breakIt(&sp)
		if _, err := NewEngine([]SLOSpec{sp}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewEngine([]SLOSpec{good}); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestFlightRecorder: the rings bound memory, Poll is incremental, and
// Dump captures exactly the tail around the instant.
func TestFlightRecorder(t *testing.T) {
	clk := &clock.Clock{}
	sr := trace.NewSpanRecorder(clk)
	ar := audit.NewRecorder(clk)
	fr := NewFlightRecorder(8, 8)
	fr.Node = 3
	fr.Runtime = "cki"

	for i := 0; i < 20; i++ {
		id := sr.Begin("req")
		ar.Emit(audit.EvSyscall, 0, 0, uint64(i), 0, 0)
		clk.Advance(clock.Microsecond)
		sr.End(id)
		fr.Poll(sr, ar)
	}
	if len(fr.Spans()) != 8 || len(fr.Events()) != 8 {
		t.Fatalf("rings hold %d spans / %d events, want 8/8", len(fr.Spans()), len(fr.Events()))
	}
	// Oldest retained span started at t=12µs (spans 12..19 survive).
	if fr.Spans()[0].At != 12*clock.Microsecond {
		t.Fatalf("oldest retained span at %v", fr.Spans()[0].At)
	}

	reg := metrics.NewRegistry()
	c := reg.Counter("reqs_total", "")
	st := NewStore(clock.Microsecond, 0)
	for i := 0; i < 20; i++ {
		c.Inc()
		st.Scrape(reg, clock.Time(i+1)*clock.Microsecond)
	}
	b := fr.Dump("watchdog", 18*clock.Microsecond, nil, st, 4)
	if b.Reason != "watchdog" || b.Node != 3 || b.Runtime != "cki" {
		t.Fatalf("bundle identity wrong: %+v", b)
	}
	if b.AtNs != 18000 {
		t.Fatalf("bundle at %dns", b.AtNs)
	}
	// Window radius 4 at t=18µs: windows stamped 14..18µs.
	if len(b.Series) != 1 || len(b.Series[0].Windows) != 5 {
		t.Fatalf("bundle series wrong: %+v", b.Series)
	}
	for _, s := range b.Spans {
		if s.At < 14*clock.Microsecond || s.At > 18*clock.Microsecond {
			t.Errorf("span at %v outside the capture range", s.At)
		}
	}
	if len(b.Spans) == 0 || len(b.Events) == 0 {
		t.Fatalf("bundle tails empty: %d spans, %d events", len(b.Spans), len(b.Events))
	}
	for _, e := range b.Events {
		if e.Kind != "syscall" {
			t.Errorf("event kind %q not rendered", e.Kind)
		}
	}
	if _, err := b.JSON(); err != nil {
		t.Fatal(err)
	}

	// An alert dump carries the alert.
	a := &Alert{SLO: "x", Severity: "page", FiredAtNs: 18000}
	b2 := fr.Dump("alert", 18*clock.Microsecond, a, st, 2)
	if b2.Alert != a || b2.Reason != "alert" {
		t.Fatalf("alert bundle wrong: %+v", b2)
	}
}

// TestScrapeDeterminism: two identical scrape sequences produce
// byte-identical JSON and binary exports.
func TestScrapeDeterminism(t *testing.T) {
	run := func() *Store {
		reg := metrics.NewRegistry()
		c := reg.Counter("a_total", "", metrics.L("runtime", "pvm"))
		h := reg.Histogram("lat_ns", "", nil, metrics.L("runtime", "pvm"))
		st := NewStore(clock.Microsecond, 16)
		scrapeN(st, reg, 40, func(tick int) {
			c.Add(uint64(tick % 7))
			h.Observe(clock.Time(100+tick*37) * clock.Nanosecond)
		})
		return st
	}
	a, b := run(), run()
	aj, _ := a.Export().JSON()
	bj, _ := b.Export().JSON()
	if !bytes.Equal(aj, bj) {
		t.Fatal("JSON export nondeterministic")
	}
	if !bytes.Equal(a.EncodeBinary(), b.EncodeBinary()) {
		t.Fatal("binary export nondeterministic")
	}
}
