package telemetry

import (
	"fmt"

	"repro/internal/clock"
)

// SLO specs and the burn-rate alert engine.
//
// Each spec names a service-level indicator derived from one stored
// series per scrape window — a windowed histogram quantile, a ratio of
// two counter deltas, a raw counter delta, or a gauge value — and a
// threshold that classifies the window good or bad. The error budget
// is the fraction of windows allowed to be bad; the burn rate over a
// trailing span of windows is (bad fraction) / budget, so burn 1.0
// spends budget exactly at the sustainable rate and burn 10 spends a
// month of budget in three days. A rule fires when BOTH its long and
// short trailing windows burn at or above the rule's threshold (the
// multi-window guard against one-sample pages) and resolves when the
// short window drops back below it.

// BurnRule is one multi-window burn-rate alert rule.
type BurnRule struct {
	// Severity names the alert class ("page", "ticket").
	Severity string `json:"severity"`
	// Long and Short are trailing window counts; Burn is the rate
	// threshold both must reach to fire.
	Long  int     `json:"long"`
	Short int     `json:"short"`
	Burn  float64 `json:"burn"`
}

// SLOSpec declares one service-level objective over a stored series.
type SLOSpec struct {
	// Name identifies the SLO in alerts and reports.
	Name string `json:"name"`
	// Metric is the SLI source series name; Labels (optional) selects
	// among several series with that name (subset match).
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	// Quantile, for histogram SLIs, picks the windowed quantile:
	// 0.5 or 0.99. Zero means "not a quantile SLI".
	Quantile float64 `json:"quantile,omitempty"`
	// TotalMetric, when set, makes the SLI a ratio of counter deltas:
	// delta(Metric) / delta(TotalMetric), with the denominator series
	// carrying exactly the numerator's labels. A zero-traffic window
	// is good.
	TotalMetric string `json:"total_metric,omitempty"`
	// Threshold classifies a window bad when the SLI exceeds it
	// (or falls below it with Invert, for "at least this good"
	// objectives like a warm-restore ratio).
	Threshold float64 `json:"threshold"`
	Invert    bool    `json:"invert,omitempty"`
	// Budget is the error budget: the allowed bad-window fraction.
	Budget float64 `json:"budget"`
	// Rules are the burn-rate alert rules, evaluated in order.
	Rules []BurnRule `json:"rules"`
	// Curve records this spec's per-tick burn rates (first matching
	// series, first rule) for burn-rate curve artifacts.
	Curve bool `json:"curve,omitempty"`
}

// Alert is one burn-rate alert event. ResolvedAtNs is 0 while firing.
type Alert struct {
	SLO          string            `json:"slo"`
	Severity     string            `json:"severity"`
	Labels       map[string]string `json:"labels,omitempty"`
	FiredAtNs    int64             `json:"fired_at_ns"`
	ResolvedAtNs int64             `json:"resolved_at_ns,omitempty"`
	// ShortBurn and LongBurn are the burn rates at fire time.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// BurnPoint is one tick of a recorded burn-rate curve.
type BurnPoint struct {
	AtNs  int64   `json:"at_ns"`
	Short float64 `json:"short"`
	Long  float64 `json:"long"`
}

// sliState is the engine's per-(spec, series) record.
type sliState struct {
	hist []bool         // trailing violation ring, newest last
	open map[int]*Alert // rule index → firing alert
}

// Engine evaluates SLO specs against a store, one scrape at a time.
// Iteration order — specs in declaration order, series in store order,
// rules in declaration order — is fixed, so the alert list is
// deterministic.
type Engine struct {
	Specs []SLOSpec
	// OnAlert, when non-nil, runs the moment an alert fires (not when
	// it resolves) — the flight-recorder dump trigger.
	OnAlert func(*Alert)

	alerts  []*Alert
	curves  map[string][]BurnPoint
	state   map[string]*sliState
	maxLong map[int]int
}

// NewEngine validates the specs and builds an engine.
func NewEngine(specs []SLOSpec) (*Engine, error) {
	e := &Engine{
		Specs:   specs,
		curves:  map[string][]BurnPoint{},
		state:   map[string]*sliState{},
		maxLong: map[int]int{},
	}
	for i, sp := range specs {
		if sp.Metric == "" {
			return nil, fmt.Errorf("telemetry: SLO %q: no metric", sp.Name)
		}
		if sp.Quantile != 0 && sp.Quantile != 0.5 && sp.Quantile != 0.99 {
			return nil, fmt.Errorf("telemetry: SLO %q: quantile %g not scraped (want 0.5 or 0.99)", sp.Name, sp.Quantile)
		}
		if sp.Budget <= 0 || sp.Budget > 1 {
			return nil, fmt.Errorf("telemetry: SLO %q: budget %g outside (0, 1]", sp.Name, sp.Budget)
		}
		if len(sp.Rules) == 0 {
			return nil, fmt.Errorf("telemetry: SLO %q: no burn rules", sp.Name)
		}
		for _, r := range sp.Rules {
			if r.Short <= 0 || r.Long < r.Short || r.Burn <= 0 {
				return nil, fmt.Errorf("telemetry: SLO %q: bad rule %+v (want 0 < short <= long, burn > 0)", sp.Name, r)
			}
			if r.Long > e.maxLong[i] {
				e.maxLong[i] = r.Long
			}
		}
	}
	return e, nil
}

// sli computes the spec's indicator for series s at tick; ok=false
// means the window carries no signal (no traffic) and counts as good.
func (sp *SLOSpec) sli(st *Store, s *Series, tick int) (float64, bool) {
	w := s.At(tick)
	if w == nil {
		return 0, false
	}
	switch {
	case sp.Quantile == 0.5:
		if w.Count == 0 {
			return 0, false
		}
		return w.P50Ns, true
	case sp.Quantile == 0.99:
		if w.Count == 0 {
			return 0, false
		}
		return w.P99Ns, true
	case sp.TotalMetric != "":
		den := st.Lookup(sp.TotalMetric, s.Labels)
		if den == nil {
			return 0, false
		}
		dw := den.At(tick)
		if dw == nil || dw.Delta <= 0 {
			return 0, false
		}
		return w.Delta / dw.Delta, true
	case s.Kind == "gauge":
		return w.Value, true
	default:
		return w.Delta, true
	}
}

// burn computes the burn rate over the trailing n windows of hist.
func burn(hist []bool, n int, budget float64) float64 {
	if n > len(hist) {
		n = len(hist)
	}
	if n == 0 {
		return 0
	}
	bad := 0
	for _, v := range hist[len(hist)-n:] {
		if v {
			bad++
		}
	}
	return float64(bad) / float64(n) / budget
}

// Step evaluates every spec against the store's most recent scrape.
// Call it once after each Store.Scrape, with the same timestamp.
func (e *Engine) Step(st *Store, now clock.Time) {
	if st.ticks == 0 {
		return
	}
	tick := st.ticks - 1
	atNs := int64(now / clock.Nanosecond)
	for i := range e.Specs {
		sp := &e.Specs[i]
		first := true
		for _, s := range st.series {
			if s.Name != sp.Metric || !labelsMatch(s.Labels, sp.Labels) {
				continue
			}
			key := fmt.Sprintf("%d|%s", i, s.key)
			ss, ok := e.state[key]
			if !ok {
				ss = &sliState{open: map[int]*Alert{}}
				e.state[key] = ss
			}
			val, hasSignal := sp.sli(st, s, tick)
			violated := false
			if hasSignal {
				if sp.Invert {
					violated = val < sp.Threshold
				} else {
					violated = val > sp.Threshold
				}
			}
			ss.hist = append(ss.hist, violated)
			if max := e.maxLong[i]; len(ss.hist) > max {
				ss.hist = append(ss.hist[:0], ss.hist[len(ss.hist)-max:]...)
			}
			for j, rule := range sp.Rules {
				short := burn(ss.hist, rule.Short, sp.Budget)
				long := burn(ss.hist, rule.Long, sp.Budget)
				if first && sp.Curve && j == 0 {
					e.curves[sp.Name] = append(e.curves[sp.Name],
						BurnPoint{AtNs: atNs, Short: short, Long: long})
				}
				open := ss.open[j]
				switch {
				case open == nil && short >= rule.Burn && long >= rule.Burn:
					a := &Alert{
						SLO: sp.Name, Severity: rule.Severity, Labels: s.Labels,
						FiredAtNs: atNs, ShortBurn: short, LongBurn: long,
					}
					ss.open[j] = a
					e.alerts = append(e.alerts, a)
					if e.OnAlert != nil {
						e.OnAlert(a)
					}
				case open != nil && short < rule.Burn:
					open.ResolvedAtNs = atNs
					delete(ss.open, j)
				}
			}
			first = false
		}
	}
}

// Alerts returns every alert in fire order (live pointers: resolved
// stamps appear as the engine advances).
func (e *Engine) Alerts() []*Alert {
	return e.alerts
}

// Curves returns the recorded burn-rate curves, keyed by SLO name.
func (e *Engine) Curves() map[string][]BurnPoint {
	return e.curves
}
