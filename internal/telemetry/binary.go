package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/clock"
)

// The CKITS1 binary time-series format: a compact canonical encoding
// of a Store for artifacts and the ckimon CLI.
//
//	magic   "CKITS1\x00\x01"           (8 bytes: name + format version)
//	header  u64 interval_ps, u32 depth, u32 ticks, u32 nseries
//	series  str name, str kind, u16 nlabels, nlabels × (str k, str v),
//	        u32 first_tick, u32 nwindows, nwindows × window
//	window  i64 at_ns, f64 delta, f64 value, f64 total, u64 count,
//	        f64 p50_ns, f64 p99_ns          (ticks are recomputed)
//	trailer u64 FNV-64a of everything before it
//
// str is u16 length + bytes. All integers are little-endian. Labels
// encode in sorted key order, so the bytes are canonical: the same
// store state always encodes to the same bytes.

var binMagic = [8]byte{'C', 'K', 'I', 'T', 'S', '1', 0, 1}

// DecodeError is a typed binary-decode failure naming the offset.
type DecodeError struct {
	Off int
	Msg string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("telemetry: bad CKITS1 data at offset %d: %s", e.Off, e.Msg)
}

// FNV64a is the artifact fingerprint hash shared by the binary
// trailer and bundle digests.
func FNV64a(data []byte) uint64 { return fnv64a(data) }

func fnv64a(data []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range data {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

type binWriter struct{ buf []byte }

func (w *binWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *binWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *binWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *binWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *binWriter) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// EncodeBinary renders the store in the CKITS1 format.
func (st *Store) EncodeBinary() []byte {
	w := &binWriter{}
	w.buf = append(w.buf, binMagic[:]...)
	w.u64(uint64(st.Interval))
	w.u32(uint32(st.Depth))
	w.u32(uint32(st.ticks))
	w.u32(uint32(len(st.series)))
	for _, s := range st.series {
		w.str(s.Name)
		w.str(s.Kind)
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.u16(uint16(len(keys)))
		for _, k := range keys {
			w.str(k)
			w.str(s.Labels[k])
		}
		w.u32(uint32(s.FirstTick))
		w.u32(uint32(len(s.Windows)))
		for _, win := range s.Windows {
			w.u64(uint64(win.AtNs))
			w.f64(win.Delta)
			w.f64(win.Value)
			w.f64(win.Total)
			w.u64(win.Count)
			w.f64(win.P50Ns)
			w.f64(win.P99Ns)
		}
	}
	w.u64(fnv64a(w.buf))
	return w.buf
}

type binReader struct {
	buf []byte
	off int
	err *DecodeError
}

func (r *binReader) fail(msg string) {
	if r.err == nil {
		r.err = &DecodeError{Off: r.off, Msg: msg}
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *binReader) str() string {
	n := int(r.u16())
	b := r.take(n)
	return string(b)
}

// DecodeBinary parses CKITS1 bytes back into a Store, verifying the
// magic, structure, and checksum trailer. Every failure is a
// *DecodeError naming the offending offset.
func DecodeBinary(data []byte) (*Store, error) {
	if len(data) < len(binMagic)+8 {
		return nil, &DecodeError{Off: 0, Msg: "too short for magic and trailer"}
	}
	for i, m := range binMagic {
		if data[i] != m {
			return nil, &DecodeError{Off: i, Msg: "bad magic (not a CKITS1 file?)"}
		}
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if sum := binary.LittleEndian.Uint64(trailer); sum != fnv64a(body) {
		return nil, &DecodeError{Off: len(body), Msg: "checksum mismatch (corrupt or torn write)"}
	}
	r := &binReader{buf: body, off: len(binMagic)}
	st := NewStore(clock.Time(r.u64()), int(r.u32()))
	st.ticks = int(r.u32())
	nseries := int(r.u32())
	for i := 0; i < nseries && r.err == nil; i++ {
		s := &Series{Name: r.str(), Kind: r.str()}
		nlabels := int(r.u16())
		var labels []struct{ k, v string }
		for j := 0; j < nlabels && r.err == nil; j++ {
			k, v := r.str(), r.str()
			labels = append(labels, struct{ k, v string }{k, v})
		}
		if len(labels) > 0 {
			s.Labels = make(map[string]string, len(labels))
			var b []byte
			b = append(b, s.Name...)
			for _, l := range labels {
				s.Labels[l.k] = l.v
				b = append(b, '|')
				b = append(b, l.k...)
				b = append(b, '=')
				b = append(b, l.v...)
			}
			s.key = string(b)
		} else {
			s.key = s.Name
		}
		s.FirstTick = int(r.u32())
		nwin := int(r.u32())
		if r.err == nil && nwin > len(body) {
			r.fail("window count exceeds input size")
		}
		for j := 0; j < nwin && r.err == nil; j++ {
			s.Windows = append(s.Windows, Window{
				Tick:  s.FirstTick + j,
				AtNs:  int64(r.u64()),
				Delta: r.f64(),
				Value: r.f64(),
				Total: r.f64(),
				Count: r.u64(),
				P50Ns: r.f64(),
				P99Ns: r.f64(),
			})
		}
		if r.err == nil {
			st.byKey[s.key] = s
			st.series = append(st.series, s)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, &DecodeError{Off: r.off, Msg: "trailing bytes after last series"}
	}
	if len(st.series) > 0 {
		last := st.series[0]
		if n := len(last.Windows); n > 0 {
			st.lastAt = clock.Time(last.Windows[n-1].AtNs) * clock.Nanosecond
		}
	}
	return st, nil
}
