package telemetry

import (
	"encoding/json"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/trace"
)

// The flight recorder: a bounded ring of the most recent spans and
// audit records, polled incrementally from the live recorders, that
// can dump a postmortem bundle — the time-series windows, spans, and
// audit tail around an instant — the moment an alert fires or the
// supervisor watchdog declares a container dead. Bounded memory makes
// it safe to leave attached for a whole fleet run; determinism makes
// the dumped bundle a committed-artifact candidate.

// FlightRecorder keeps the last SpanDepth spans and EventDepth audit
// events seen through Poll.
type FlightRecorder struct {
	// Node and Runtime label every bundle this recorder dumps.
	Node    int
	Runtime string

	SpanDepth  int
	EventDepth int

	spans   []trace.Span
	events  []audit.Event
	spanCur int
	evCur   int
}

// Default flight-recorder ring depths.
const (
	DefaultSpanDepth  = 4096
	DefaultEventDepth = 8192
)

// NewFlightRecorder creates a recorder with the given ring depths
// (defaults when <= 0).
func NewFlightRecorder(spanDepth, eventDepth int) *FlightRecorder {
	if spanDepth <= 0 {
		spanDepth = DefaultSpanDepth
	}
	if eventDepth <= 0 {
		eventDepth = DefaultEventDepth
	}
	return &FlightRecorder{SpanDepth: spanDepth, EventDepth: eventDepth}
}

func trimSpans(s []trace.Span, depth int) []trace.Span {
	if len(s) > depth {
		return append(s[:0], s[len(s)-depth:]...)
	}
	return s
}

func trimEvents(s []audit.Event, depth int) []audit.Event {
	if len(s) > depth {
		return append(s[:0], s[len(s)-depth:]...)
	}
	return s
}

// Poll pulls everything recorded since the last Poll into the rings.
// Either recorder may be nil. Pure observation: the sources are only
// read, and nothing advances any clock.
func (f *FlightRecorder) Poll(sr *trace.SpanRecorder, ar *audit.Recorder) {
	if f == nil {
		return
	}
	if sr != nil {
		f.spans = append(f.spans, sr.SpansFrom(f.spanCur)...)
		f.spanCur = sr.Len()
		f.spans = trimSpans(f.spans, f.SpanDepth)
	}
	if ar != nil {
		f.events = append(f.events, ar.EventsFrom(f.evCur)...)
		f.evCur = ar.Len()
		f.events = trimEvents(f.events, f.EventDepth)
	}
}

// Spans returns the current span ring contents (oldest first).
func (f *FlightRecorder) Spans() []trace.Span { return f.spans }

// Events returns the current audit ring contents (oldest first).
func (f *FlightRecorder) Events() []audit.Event { return f.events }

// BundleEvent is one audit record rendered for a bundle.
type BundleEvent struct {
	AtPs   int64  `json:"at_ps"`
	Kind   string `json:"kind"`
	VCPU   int    `json:"vcpu"`
	Detail string `json:"detail"`
}

// Bundle is a postmortem capture around one instant: why it was
// taken, the alert (if one triggered it), the time-series windows
// leading up to it, and the span and audit tails from the rings.
type Bundle struct {
	// Reason is "alert" (a burn-rate rule fired) or "watchdog" (the
	// supervisor declared a container dead).
	Reason  string `json:"reason"`
	AtNs    int64  `json:"at_ns"`
	Node    int    `json:"node,omitempty"`
	Runtime string `json:"runtime,omitempty"`
	Alert   *Alert `json:"alert,omitempty"`
	// Series carries, per stored series, only the windows inside the
	// bundle's trailing capture range.
	Series []*Series     `json:"series"`
	Spans  []trace.Span  `json:"spans"`
	Events []BundleEvent `json:"events"`
}

// Dump captures a postmortem bundle at virtual time at: the last
// radius scrape windows of every series in st (nil st for none), plus
// the span and audit tails inside that same time range. reason is
// "alert" or "watchdog"; alert may be nil for watchdog dumps.
func (f *FlightRecorder) Dump(reason string, at clock.Time, alert *Alert, st *Store, radius int) *Bundle {
	b := &Bundle{
		Reason: reason,
		AtNs:   int64(at / clock.Nanosecond),
		Alert:  alert,
		Series: []*Series{},
	}
	if f != nil {
		b.Node = f.Node
		b.Runtime = f.Runtime
	}
	since := clock.Time(0)
	if st != nil && radius > 0 {
		if lo := at - clock.Time(radius)*st.Interval; lo > 0 {
			since = lo
		}
	}
	if st != nil {
		atNs := int64(at / clock.Nanosecond)
		sinceNs := int64(since / clock.Nanosecond)
		for _, s := range st.Series() {
			cut := &Series{Name: s.Name, Kind: s.Kind, Labels: s.Labels}
			for i, w := range s.Windows {
				if w.AtNs < sinceNs || w.AtNs > atNs {
					continue
				}
				if cut.Windows == nil {
					cut.FirstTick = s.FirstTick + i
				}
				cut.Windows = append(cut.Windows, w)
			}
			if cut.Windows != nil {
				b.Series = append(b.Series, cut)
			}
		}
	}
	if f != nil {
		// The span filter is the same one behind ckitrace -since/-until.
		b.Spans = trace.FilterSpans(f.spans, since, at)
		for _, e := range f.events {
			if e.At < since || e.At > at {
				continue
			}
			b.Events = append(b.Events, BundleEvent{
				AtPs: int64(e.At), Kind: e.Kind.String(),
				VCPU: int(e.VCPU), Detail: e.Detail(),
			})
		}
	}
	if b.Spans == nil {
		b.Spans = []trace.Span{}
	}
	if b.Events == nil {
		b.Events = []BundleEvent{}
	}
	return b
}

// JSON renders the bundle as deterministic indented JSON.
func (b *Bundle) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}
