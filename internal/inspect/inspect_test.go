package inspect_test

import (
	"strings"
	"testing"

	"repro/internal/backends"
	"repro/internal/cki"
	"repro/internal/guest"
	"repro/internal/inspect"
	"repro/internal/mem"
	"repro/internal/mmu"
)

func TestWalkCoalescesRegions(t *testing.T) {
	c := backends.MustNew(backends.RunC, backends.Options{})
	k := c.K
	addr, err := k.MmapCall(16*mem.PageSize, guest.ProtRead|guest.ProtWrite, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.TouchRange(addr, 16*mem.PageSize, mmu.Write); err != nil {
		t.Fatal(err)
	}
	regions := inspect.Walk(c.HostMem, c.CPU.CR3())
	var found *inspect.Region
	for i := range regions {
		if regions[i].Start == addr {
			found = &regions[i]
		}
	}
	if found == nil {
		t.Fatalf("mmap region not found in %d regions", len(regions))
	}
	if found.Pages != 16 || !found.Writable || !found.User {
		t.Errorf("region = %+v, want 16 rw user pages", *found)
	}
	// Splitting the protection splits the region.
	if err := k.MprotectCall(addr, 4*mem.PageSize, guest.ProtRead); err != nil {
		t.Fatal(err)
	}
	regions = inspect.Walk(c.HostMem, c.CPU.CR3())
	var ro, rw int
	for _, r := range regions {
		if r.Start >= addr && r.End <= addr+16*mem.PageSize {
			if r.Writable {
				rw += r.Pages
			} else {
				ro += r.Pages
			}
		}
	}
	if ro != 4 || rw != 12 {
		t.Errorf("after mprotect: ro=%d rw=%d, want 4/12", ro, rw)
	}
}

func TestCKILayoutVisible(t *testing.T) {
	// The per-vCPU copy must show the guest kernel image (kernel half),
	// the KSM regions with their protection keys, and user memory.
	c := backends.MustNew(backends.CKI, backends.Options{})
	k := c.K
	addr, err := k.MmapCall(4*mem.PageSize, guest.ProtRead|guest.ProtWrite, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.TouchRange(addr, 4*mem.PageSize, mmu.Write); err != nil {
		t.Fatal(err)
	}
	var sawKernText, sawKSM, sawPerVCPU, sawUser bool
	for _, r := range inspect.Walk(c.HostMem, c.CPU.CR3()) {
		switch {
		case r.Start == guest.KernBase && !r.User && !r.NX && !r.Writable:
			sawKernText = true
		case r.Start == cki.KSMBase && r.PKey == cki.KeyKSM:
			sawKSM = true
		case r.Start == cki.PerVCPUBase && r.PKey == cki.KeyKSM:
			sawPerVCPU = true
		case r.Start == addr && r.User && r.Writable:
			sawUser = true
		}
	}
	if !sawKernText || !sawKSM || !sawPerVCPU || !sawUser {
		t.Errorf("layout incomplete: text=%v ksm=%v pervcpu=%v user=%v\n%s",
			sawKernText, sawKSM, sawPerVCPU, sawUser,
			inspect.Render(c.HostMem, c.CPU.CR3()))
	}
	// The guest's own root must NOT contain the KSM regions.
	for _, r := range inspect.Walk(c.HostMem, k.Cur.AS.Root) {
		if r.Start == cki.KSMBase || r.Start == cki.PerVCPUBase {
			t.Errorf("guest-visible root maps KSM region at %#x", r.Start)
		}
	}
}

func TestRenderOutput(t *testing.T) {
	c := backends.MustNew(backends.CKI, backends.Options{})
	out := inspect.Render(c.HostMem, c.CPU.CR3())
	for _, want := range []string{"address space", "pkey=1", "kern", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
