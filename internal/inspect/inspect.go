// Package inspect renders simulated address spaces for humans: it walks
// a real page table in simulated physical memory and coalesces adjacent
// leaves with identical attributes into regions. cmd/ckirun's -dump
// flag and the layout tests use it.
package inspect

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/pagetable"
)

// Region is a maximal run of identically-mapped virtual memory.
type Region struct {
	Start, End uint64
	Writable   bool
	User       bool
	NX         bool
	Huge       bool
	PKey       int
	Pages      int
}

// attrs summarizes permissions compactly ("rw-/user pkey=2").
func (r Region) attrs() string {
	var b strings.Builder
	b.WriteByte('r')
	if r.Writable {
		b.WriteByte('w')
	} else {
		b.WriteByte('-')
	}
	if r.NX {
		b.WriteByte('-')
	} else {
		b.WriteByte('x')
	}
	if r.User {
		b.WriteString(" user")
	} else {
		b.WriteString(" kern")
	}
	if r.Huge {
		b.WriteString(" 2M")
	}
	if r.PKey != 0 {
		fmt.Fprintf(&b, " pkey=%d", r.PKey)
	}
	return b.String()
}

// Walk enumerates every mapped region under root, coalescing runs.
func Walk(m *mem.PhysMem, root mem.PFN) []Region {
	var out []Region
	var cur *Region
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	visit := func(va uint64, e pagetable.PTE, huge bool, wAgg, uAgg bool) {
		size := uint64(mem.PageSize)
		if huge {
			size = mem.HugePageSize
		}
		w := wAgg && e.Writable()
		u := uAgg && e.User()
		if cur != nil && cur.End == va &&
			cur.Writable == w && cur.User == u &&
			cur.NX == e.NX() && cur.PKey == e.PKey() && cur.Huge == huge {
			cur.End += size
			cur.Pages++
			return
		}
		flush()
		cur = &Region{
			Start: va, End: va + size,
			Writable: w, User: u, NX: e.NX(),
			Huge: huge, PKey: e.PKey(), Pages: 1,
		}
	}
	var walkLevel func(ptp mem.PFN, level int, base uint64, w, u bool)
	walkLevel = func(ptp mem.PFN, level int, base uint64, w, u bool) {
		span := uint64(1) << (12 + 9*uint(level-1))
		for i := 0; i < mem.WordsPerPage; i++ {
			e := pagetable.ReadEntry(m, ptp, i)
			if !e.Present() {
				continue
			}
			va := base + uint64(i)*span
			if level == pagetable.LevelPML4 && i >= 256 {
				// Canonical high half: sign-extend.
				va |= 0xffff_0000_0000_0000
			}
			if level == pagetable.LevelPT || (level == pagetable.LevelPD && e.Huge()) {
				visit(va, e, level == pagetable.LevelPD, w, u)
				continue
			}
			walkLevel(e.PFN(), level-1, va, w && e.Writable(), u && e.User())
		}
	}
	walkLevel(root, pagetable.LevelPML4, 0, true, true)
	flush()
	return out
}

// Render formats the regions as a table.
func Render(m *mem.PhysMem, root mem.PFN) string {
	var b strings.Builder
	fmt.Fprintf(&b, "address space @ root %#x\n", uint64(root))
	total := 0
	for _, r := range Walk(m, root) {
		fmt.Fprintf(&b, "  %#018x-%#018x  %8d pages  %s\n", r.Start, r.End, r.Pages, r.attrs())
		total += r.Pages
	}
	fmt.Fprintf(&b, "  total: %d mapped pages\n", total)
	return b.String()
}
