// Package virtio models a virtio virtqueue: a descriptor ring living in
// guest-visible simulated memory, a guest-side producer, and a host-side
// device that consumes descriptors when kicked.
//
// The transport of the kick is injected by the container runtime and is
// where the backends diverge: an MMIO write (a VM exit) under HVM, a
// hypercall under PVM and CKI (§5: "We replace the MMIOs in the guest
// kernel (VirtIO frontend) with hypercalls"). Notification suppression
// is modelled with the standard used-ring flag, which is what lets a
// loaded server amortize kicks across batched completions.
package virtio

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/mem"
)

// Ring layout (words within the ring frame):
//
//	word 0: avail index (guest increments)
//	word 1: used index (device increments)
//	word 2: device flags (bit 0 = suppress notifications)
//	word 3: guest flags (unused)
//	word 8+2i, 9+2i: descriptor i (payload id, payload length)
const (
	wAvail   = 0
	wUsed    = 1
	wDevFlag = 2
	ringBase = 8
)

// FlagSuppressKick is set by the device while it is already processing,
// telling the guest that further kicks are unnecessary.
const FlagSuppressKick = 1

// ErrRingFull is returned when the descriptor ring has no free slot.
var ErrRingFull = errors.New("virtio: ring full")

// Device is the host-side backend invoked for each descriptor.
type Device func(payload []byte) (response []byte)

// Stats counts queue activity.
type Stats struct {
	Submitted  uint64
	Kicks      uint64
	Suppressed uint64
	Completed  uint64
	// Dropped counts doorbells lost to fault injection.
	Dropped uint64
}

// Queue is one virtqueue shared between a guest producer and a host
// device.
type Queue struct {
	mem   *mem.PhysMem
	frame mem.PFN
	size  int
	costs *clock.Costs

	// Kick is the runtime-specific notification transport. It is
	// invoked with the queue already published; its cost is charged by
	// the runtime (VM exit, hypercall, ...).
	Kick func() error
	// Dev processes one request payload.
	Dev Device
	// Inj, when non-nil, can drop doorbells (faults.VirtioKick): the
	// descriptors stay published and are recovered by the next
	// successful kick, like a lost MSI.
	Inj faults.Injector

	payloads  map[uint64][]byte
	responses map[uint64][]byte
	nextID    uint64
	inflight  int

	stats Stats
}

// New allocates a queue of the given size whose ring lives in a frame of
// m (guest-visible memory).
func New(m *mem.PhysMem, owner int, size int, costs *clock.Costs) (*Queue, error) {
	if size <= 0 || size > (mem.WordsPerPage-ringBase)/2 {
		return nil, fmt.Errorf("virtio: bad ring size %d", size)
	}
	f, err := m.Alloc(owner)
	if err != nil {
		return nil, err
	}
	return &Queue{
		mem:       m,
		frame:     f,
		size:      size,
		costs:     costs,
		payloads:  make(map[uint64][]byte),
		responses: make(map[uint64][]byte),
		nextID:    1,
	}, nil
}

func (q *Queue) word(i int) uint64 { return q.mem.ReadWord(q.frame.Addr() + uint64(i)*8) }
func (q *Queue) setWord(i int, v uint64) {
	q.mem.WriteWord(q.frame.Addr()+uint64(i)*8, v)
}

// Stats returns a copy of the counters.
func (q *Queue) Stats() Stats { return q.stats }

// Pending reports descriptors published but not yet consumed.
func (q *Queue) Pending() int {
	return int(q.word(wAvail) - q.word(wUsed))
}

// Submit publishes one request descriptor, charging the ring-push cost
// to clk. It does not notify; call Kick (or rely on a suppressed-kick
// batch) afterwards. Returns the descriptor id.
func (q *Queue) Submit(clk *clock.Clock, payload []byte) (uint64, error) {
	if q.Pending()+q.inflight >= q.size {
		return 0, ErrRingFull
	}
	clk.Advance(q.costs.VirtqueuePush)
	id := q.nextID
	q.nextID++
	q.payloads[id] = payload
	slot := int(q.word(wAvail)) % q.size
	q.setWord(ringBase+2*slot, id)
	q.setWord(ringBase+2*slot+1, uint64(len(payload)))
	q.setWord(wAvail, q.word(wAvail)+1)
	q.stats.Submitted++
	return id, nil
}

// NeedsKick reports whether the device asked for a notification.
func (q *Queue) NeedsKick() bool {
	return q.word(wDevFlag)&FlagSuppressKick == 0
}

// KickIfNeeded notifies the device through the runtime transport unless
// suppression is active, then drains the queue. This is the guest's
// post-publish step.
func (q *Queue) KickIfNeeded(clk *clock.Clock) error {
	if !q.NeedsKick() {
		q.stats.Suppressed++
		return nil
	}
	if q.Inj != nil && q.Inj.Fire(faults.VirtioKick) {
		q.stats.Dropped++
		return nil
	}
	q.stats.Kicks++
	if q.Kick != nil {
		if err := q.Kick(); err != nil {
			return err
		}
	}
	return q.Drain(clk)
}

// Drain makes the device consume every published descriptor. While
// draining, notifications are suppressed, so producers that publish
// during a drain don't pay for kicks — the batching effect the paper's
// I/O throughput results depend on.
func (q *Queue) Drain(clk *clock.Clock) error {
	q.setWord(wDevFlag, q.word(wDevFlag)|FlagSuppressKick)
	defer q.setWord(wDevFlag, q.word(wDevFlag)&^FlagSuppressKick)
	for q.Pending() > 0 {
		used := q.word(wUsed)
		slot := int(used) % q.size
		id := q.word(ringBase + 2*slot)
		clk.Advance(q.costs.VirtqueuePop)
		payload := q.payloads[id]
		delete(q.payloads, id)
		var resp []byte
		if q.Dev != nil {
			resp = q.Dev(payload)
		}
		q.responses[id] = resp
		q.setWord(wUsed, used+1)
		q.stats.Completed++
	}
	return nil
}

// Response collects (and forgets) the device's response for id.
func (q *Queue) Response(id uint64) ([]byte, bool) {
	r, ok := q.responses[id]
	if ok {
		delete(q.responses, id)
	}
	return r, ok
}
