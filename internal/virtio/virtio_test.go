package virtio

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
)

func newQueue(t *testing.T, size int) (*Queue, *clock.Clock) {
	t.Helper()
	m := mem.New(64)
	q, err := New(m, 1, size, clock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return q, new(clock.Clock)
}

func TestSubmitKickResponse(t *testing.T) {
	q, clk := newQueue(t, 8)
	var kicked int
	q.Kick = func() error { kicked++; return nil }
	q.Dev = func(p []byte) []byte { return append([]byte("echo:"), p...) }
	id, err := q.Submit(clk, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.KickIfNeeded(clk); err != nil {
		t.Fatal(err)
	}
	if kicked != 1 {
		t.Errorf("kicks = %d, want 1", kicked)
	}
	resp, ok := q.Response(id)
	if !ok || !bytes.Equal(resp, []byte("echo:hello")) {
		t.Errorf("response = %q %v", resp, ok)
	}
	if _, ok := q.Response(id); ok {
		t.Error("response not consumed")
	}
	s := q.Stats()
	if s.Submitted != 1 || s.Completed != 1 || s.Kicks != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestKickSuppressionDuringDrain(t *testing.T) {
	q, clk := newQueue(t, 16)
	var kicks int
	q.Kick = func() error { kicks++; return nil }
	// A device that, while processing, causes more submissions — the
	// batching pattern of a loaded server.
	depth := 0
	q.Dev = func(p []byte) []byte {
		if depth < 5 {
			depth++
			if _, err := q.Submit(clk, []byte{byte(depth)}); err != nil {
				t.Fatal(err)
			}
			// The producer checks NeedsKick: suppression must be on.
			if q.NeedsKick() {
				t.Error("kick not suppressed during drain")
			}
			if err := q.KickIfNeeded(clk); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	}
	if _, err := q.Submit(clk, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if err := q.KickIfNeeded(clk); err != nil {
		t.Fatal(err)
	}
	if kicks != 1 {
		t.Errorf("kicks = %d, want 1 (rest amortized)", kicks)
	}
	if got := q.Stats().Completed; got != 6 {
		t.Errorf("completed = %d, want 6", got)
	}
	if got := q.Stats().Suppressed; got != 5 {
		t.Errorf("suppressed = %d, want 5", got)
	}
}

func TestRingFull(t *testing.T) {
	q, clk := newQueue(t, 4)
	for i := 0; i < 4; i++ {
		if _, err := q.Submit(clk, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Submit(clk, []byte{9}); err != ErrRingFull {
		t.Errorf("err = %v, want ErrRingFull", err)
	}
	// Draining frees slots.
	q.Dev = func(p []byte) []byte { return nil }
	if err := q.Drain(clk); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(clk, []byte{9}); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
}

func TestRingStateLivesInSimulatedMemory(t *testing.T) {
	m := mem.New(64)
	q, err := New(m, 1, 8, clock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	clk := new(clock.Clock)
	if _, err := q.Submit(clk, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The avail index is a real word in a real frame.
	if got := m.ReadWord(q.frame.Addr()); got != 1 {
		t.Errorf("avail index in memory = %d, want 1", got)
	}
	q.Dev = func(p []byte) []byte { return nil }
	if err := q.Drain(clk); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadWord(q.frame.Addr() + 8); got != 1 {
		t.Errorf("used index in memory = %d, want 1", got)
	}
}

func TestCostsCharged(t *testing.T) {
	q, clk := newQueue(t, 8)
	q.Dev = func(p []byte) []byte { return nil }
	if _, err := q.Submit(clk, []byte("x")); err != nil {
		t.Fatal(err)
	}
	afterPush := clk.Now()
	if afterPush != clock.DefaultCosts().VirtqueuePush {
		t.Errorf("push charged %v", afterPush)
	}
	if err := q.Drain(clk); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != afterPush+clock.DefaultCosts().VirtqueuePop {
		t.Errorf("pop charged %v", clk.Now()-afterPush)
	}
}

func TestBadRingSize(t *testing.T) {
	m := mem.New(64)
	if _, err := New(m, 1, 0, clock.DefaultCosts()); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(m, 1, 10000, clock.DefaultCosts()); err == nil {
		t.Error("oversized ring accepted")
	}
}
