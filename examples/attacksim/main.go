// Attack simulation: a compromised guest kernel tries every escape and
// denial-of-service channel the paper's design closes (§4, §6), against
// the real mechanisms — PKS-blocked instructions, KSM page-table
// verification, gate integrity checks, interrupt-abuse defences. Every
// attack must fail; the container keeps running afterwards.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/cki"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

type attack struct {
	name string
	// run returns nil if the ATTACK SUCCEEDED (bad!) and the blocking
	// error/fault otherwise.
	run func() error
}

func main() {
	c, err := backends.New(backends.CKI, backends.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ksm, gate, sw, ok := c.CKIInternals()
	if !ok {
		log.Fatal("not a CKI container")
	}
	cpu := c.CPU
	cpu.SetMode(hw.ModeKernel) // the attacker is the guest *kernel*

	// Something real to protect: a second container's frame.
	victimFrame, err := c.HostMem.Alloc(99)
	if err != nil {
		log.Fatal(err)
	}

	attacks := []attack{
		{"disable interrupts with cli (DoS)", func() error {
			return faultOf(cpu.Cli())
		}},
		{"rewrite IDTR with lidt (hijack interrupts)", func() error {
			return faultOf(cpu.Lidt(&hw.IDT{}))
		}},
		{"load arbitrary CR3 (escape address space)", func() error {
			return faultOf(cpu.WriteCR3(victimFrame, 0))
		}},
		{"write MSR (reprogram timer/IPI)", func() error {
			return faultOf(cpu.Wrmsr(0x830, 0xdead))
		}},
		{"flush another container's TLB with invpcid", func() error {
			return faultOf(cpu.Invpcid(7))
		}},
		{"map another container's memory via KSM", func() error {
			pt, err := ksm.AllocGuestFrame()
			if err != nil {
				return err
			}
			if err := ksm.DeclarePTP(pt, pagetable.LevelPT); err != nil {
				return err
			}
			return ksm.WritePTE(pagetable.LevelPT, pt, 0,
				pagetable.Make(victimFrame, pagetable.FlagPresent|pagetable.FlagWritable|pagetable.FlagUser|pagetable.FlagNX, 0))
		}},
		{"bless a pre-seeded page table (stale declare)", func() error {
			dirty, err := ksm.AllocGuestFrame()
			if err != nil {
				return err
			}
			pagetable.WriteEntry(c.HostMem, dirty, 0,
				pagetable.Make(victimFrame, pagetable.FlagPresent, 0))
			return ksm.DeclarePTP(dirty, pagetable.LevelPT)
		}},
		{"mint kernel-executable code (wrpkrs gadget)", func() error {
			pt, err := ksm.AllocGuestFrame()
			if err != nil {
				return err
			}
			if err := ksm.DeclarePTP(pt, pagetable.LevelPT); err != nil {
				return err
			}
			payload, err := ksm.AllocGuestFrame()
			if err != nil {
				return err
			}
			return ksm.WritePTE(pagetable.LevelPT, pt, 1,
				pagetable.Make(payload, pagetable.FlagPresent, 0)) // U=0, NX=0
		}},
		{"unmap the KSM from the address space (reserved slots)", func() error {
			top := findTopPTP(c, ksm)
			return ksm.WritePTE(pagetable.LevelPML4, top, 510, 0)
		}},
		{"ROP-jump to the gate's trailing wrpkrs with PKRS=0", func() error {
			return gate.AbuseJumpToExit(0)
		}},
		{"forge a hardware interrupt by jumping to the gate", func() error {
			return sw.ForgeInterrupt(hw.VectorTimer)
		}},
		{"sysret with interrupts masked (DoS via IF=0)", func() error {
			if f := cpu.Sysret(false); f != nil {
				return f
			}
			cpu.SetMode(hw.ModeKernel)
			if cpu.IF() {
				return errors.New("hardware extension forced IF back on")
			}
			return nil // IF stayed off → attack worked
		}},
		{"sabotage the interrupt stack, then take a timer tick", func() error {
			cpu.SetStackValid(false)
			defer cpu.SetStackValid(true)
			if err := sw.HardwareInterrupt(hw.VectorTimer); err != nil {
				return err
			}
			// Delivery survived thanks to IST: the *attack* failed.
			return errors.New("IST kept delivery alive")
		}},
	}

	fmt.Println("compromised guest kernel vs CKI defences:")
	failedDefences := 0
	for _, a := range attacks {
		err := a.run()
		if err == nil {
			fmt.Printf("  [BREACH] %-55s\n", a.name)
			failedDefences++
			continue
		}
		fmt.Printf("  blocked  %-55s (%v)\n", a.name, err)
	}
	if failedDefences > 0 {
		log.Fatalf("%d attack(s) succeeded", failedDefences)
	}

	// The container must still be fully functional afterwards.
	cpu.SetMode(hw.ModeUser)
	cpu.Wrpkru(0)
	if f := cpu.Syscall(); f != nil {
		log.Fatal(f)
	}
	cpu.Sysret(true)
	if pid := c.K.Getpid(); pid != 1 {
		log.Fatalf("container damaged: getpid = %d", pid)
	}
	fmt.Printf("\nall %d attacks blocked; container still serving (getpid=1, ksm rejections=%d)\n",
		len(attacks), ksm.Stats.Rejections)
}

// faultOf converts a *hw.Fault into error (nil stays nil).
func faultOf(f *hw.Fault) error {
	if f == nil {
		return nil
	}
	return f
}

// findTopPTP locates the running address space's declared top-level PTP.
func findTopPTP(c *backends.Container, ksm *cki.KSM) mem.PFN {
	root := c.K.Cur.AS.Root
	if ksm.IsDeclared(root) {
		return root
	}
	panic("no declared top-level PTP")
}
