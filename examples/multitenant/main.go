// Multitenant: several CKI secure containers co-resident on ONE shared
// machine — one host kernel, one physical memory, one core — doing real
// interleaved work while every isolation boundary holds: frame
// ownership, per-container KSMs, PCID-tagged TLB entries, and the
// two-keys-per-container trick that sidesteps the 16-key PKS limit.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/cki"
	"repro/internal/guest"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/pagetable"
)

func main() {
	const tenants = 6
	cl, err := backends.NewCluster(1 << 17)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		if _, err := cl.Add(backends.CKI, backends.Options{SegmentFrames: 2048}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d CKI containers on one machine (%d host frames in use)\n\n",
		tenants, cl.M.HostMem.InUse())

	// Interleaved tenant work: each writes its own files and memory.
	addrs := make([]uint64, tenants)
	err = cl.RoundRobin(4, func(round int, c *backends.Container) error {
		k := c.K
		if round == 0 {
			a, err := k.MmapCall(32*mem.PageSize, guest.ProtRead|guest.ProtWrite, nil, false)
			if err != nil {
				return err
			}
			addrs[k.ContainerID-1] = a
			if _, err := k.Open(fmt.Sprintf("/tenant-%d.log", k.ContainerID), true); err != nil {
				return err
			}
		}
		return k.TouchRange(addrs[k.ContainerID-1], 32*mem.PageSize, mmu.Write)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 4 interleaved rounds: machine time %v\n", cl.M.Clk.Now())
	for i, c := range cl.Containers {
		st := c.K.Stats
		fmt.Printf("  tenant %d: %3d syscalls, %3d page faults, KSM PTE updates %d\n",
			i+1, st.Syscalls, st.PageFaults, ksmOf(c).Stats.PTEUpdates)
	}

	// Tenant 1 turns hostile: all its escape attempts die while the
	// other tenants keep running.
	fmt.Println("\ntenant 1 turns hostile:")
	if err := cl.Run(0, func(c *backends.Container) error {
		ksm := ksmOf(c)
		victim, _ := cl.Containers[1].K.Cur.AS.ResidentFrame(addrs[1])
		pt, err := ksm.AllocGuestFrame()
		if err != nil {
			return err
		}
		if err := ksm.DeclarePTP(pt, pagetable.LevelPT); err != nil {
			return err
		}
		err = ksm.WritePTE(pagetable.LevelPT, pt, 0,
			pagetable.Make(victim, pagetable.FlagPresent|pagetable.FlagUser|pagetable.FlagWritable|pagetable.FlagNX, 0))
		if !errors.Is(err, cki.ErrNotOwned) {
			return fmt.Errorf("ESCAPED: mapped tenant 2's frame (%v)", err)
		}
		fmt.Printf("  map tenant-2 memory: blocked (%v)\n", err)
		// The hostile guest *kernel* tries invpcid (kernel mode, PKRS
		// still the guest's): the PKS extension faults it.
		c.CPU.SetMode(hw.ModeKernel)
		defer c.CPU.SetMode(hw.ModeUser)
		f := c.CPU.Invpcid(cl.Containers[1].K.Cur.AS.PCID)
		if f == nil {
			return fmt.Errorf("ESCAPED: flushed tenant 2's TLB context")
		}
		fmt.Printf("  flush tenant-2 TLB via invpcid: blocked (%v)\n", f)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// The victims are unharmed.
	err = cl.RoundRobin(1, func(_ int, c *backends.Container) error {
		if c.K.ContainerID == 1 {
			return nil
		}
		return c.K.TouchRange(addrs[c.K.ContainerID-1], 32*mem.PageSize, mmu.Read)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall other tenants verified intact after the attack.")
}

func ksmOf(c *backends.Container) *cki.KSM {
	ksm, _, _, ok := c.CKIInternals()
	if !ok {
		log.Fatal("not CKI")
	}
	return ksm
}
