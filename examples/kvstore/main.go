// KV store: run the memcached-like server of Fig. 16 on two runtimes
// and trace where an I/O-intensive request's time goes — then produce
// the closed-loop throughput curve with the discrete-event client model.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/workloads"
)

func main() {
	app := workloads.Memcached(128)

	fmt.Println("memcached-like server, 500-byte values, 1:1 GET/SET")
	fmt.Println("\nper-request service time (unbatched → batched):")
	for _, cfg := range []struct {
		kind backends.Kind
		opts backends.Options
	}{
		{backends.CKI, backends.Options{Nested: true}},
		{backends.PVM, backends.Options{Nested: true}},
		{backends.HVM, backends.Options{Nested: true}},
	} {
		one := app
		one.Requests, one.Batch = 64, 1
		r1, err := one.Run(backends.MustNew(cfg.kind, cfg.opts))
		if err != nil {
			log.Fatal(err)
		}
		batched := app
		batched.Requests, batched.Batch = 64, 2
		r2, err := batched.Run(backends.MustNew(cfg.kind, cfg.opts))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s  %7.2fµs → %7.2fµs\n", r1.Runtime,
			r1.PerOp().Micros(), r2.PerOp().Micros())
	}

	fmt.Println("\nclosed-loop throughput (k ops/s) vs clients:")
	clients := []int{1, 4, 16, 64, 128}
	fmt.Printf("  %-8s", "runtime")
	for _, n := range clients {
		fmt.Printf("%8d", n)
	}
	fmt.Println()
	for _, cfg := range []struct {
		name string
		kind backends.Kind
	}{{"CKI-NST", backends.CKI}, {"PVM-NST", backends.PVM}, {"HVM-NST", backends.HVM}} {
		model, err := bench.ServiceModelFor(app, cfg.kind, backends.Options{Nested: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s", cfg.name)
		for _, n := range clients {
			ops, _ := des.ClosedLoop{
				Clients: n, Workers: 4,
				RTT:     40 * clock.Microsecond,
				Service: model,
				Horizon: 20 * clock.Millisecond,
			}.Throughput()
			fmt.Printf("%8.0f", ops/1000)
		}
		fmt.Println()
	}
	fmt.Println("\nthe gap is the virtio path: one hypercall doorbell (CKI) versus an")
	fmt.Println("L0-forwarded MMIO exit plus interrupt-injection exits (nested HVM).")
}
