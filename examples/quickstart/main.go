// Quickstart: boot a CKI secure container, run a small program against
// the guest kernel's syscall and memory API, and compare its core
// latencies with the other container runtimes.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/mmu"
)

func main() {
	// Boot a container on the CKI runtime: a deprivileged guest kernel
	// collocated with its kernel security monitor, PKS keys loaded.
	c, err := backends.New(backends.CKI, backends.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k := c.K
	fmt.Printf("booted %s (guest kernel pid %d)\n\n", c.Name, k.Getpid())

	// Files on the guest's tmpfs.
	fd, err := k.Open("/hello.txt", true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Write(fd, []byte("hello from inside a secure container")); err != nil {
		log.Fatal(err)
	}
	if err := k.Lseek(fd, 0); err != nil {
		log.Fatal(err)
	}
	data, err := k.Read(fd, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", data)

	// Anonymous memory with demand paging. Every mapping operation is
	// verified by the KSM; every fault is handled inside the container.
	addr, err := k.MmapCall(64*mem.PageSize, guest.ProtRead|guest.ProtWrite, nil, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := k.TouchRange(addr, 64*mem.PageSize, mmu.Write); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulted in 64 pages: %d page faults, %d KSM-verified PTE writes\n\n",
		k.Stats.PageFaults, k.Stats.PTEWrites)

	// Compare the headline latencies across runtimes (Table 2).
	fmt.Println("getpid / anonymous page fault latency:")
	for _, cfg := range backends.AllKinds() {
		cc := backends.MustNew(cfg.Kind, cfg.Opts)
		pf, err := cc.MeasureAnonFault(32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s  syscall %5.0f ns   pgfault %7.0f ns\n",
			cc.Name, cc.MeasureSyscall().Nanos(), pf.Nanos())
	}
	fmt.Println("\nCKI matches the OS-level container on both paths while keeping")
	fmt.Println("a separate, deprivileged kernel per container.")
}
