// Nested cloud: deploy secure containers inside an L1 IaaS VM (the
// paper's §2.2 scenario) and watch hardware-assisted virtualization
// collapse while CKI keeps native-class latencies: every HVM exit now
// detours through the L0 hypervisor, and every EPT fault is serviced by
// shadow-EPT emulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/backends"
	"repro/internal/workloads"
)

func main() {
	fmt.Println("secure containers inside an L1 IaaS VM (nested cloud)")
	fmt.Println()

	fmt.Println("microbenchmarks (ns):")
	for _, cfg := range []struct {
		kind backends.Kind
	}{{backends.HVM}, {backends.PVM}, {backends.CKI}} {
		c := backends.MustNew(cfg.kind, backends.Options{Nested: true})
		pf, err := c.MeasureAnonFault(32)
		if err != nil {
			log.Fatal(err)
		}
		hc, err := c.MeasureHypercall()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s  syscall %4.0f   pgfault %6.0f   hypercall %5.0f\n",
			c.Name, c.MeasureSyscall().Nanos(), pf.Nanos(), hc.Nanos())
	}

	fmt.Println("\nbtree (page-fault-intensive) end to end:")
	app := workloads.Fig12Apps(1)[0]
	base := 0.0
	for _, cfg := range []struct {
		kind backends.Kind
	}{{backends.CKI}, {backends.PVM}, {backends.HVM}} {
		c := backends.MustNew(cfg.kind, backends.Options{Nested: true})
		res, err := app.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(res.Time)
		}
		fmt.Printf("  %-8s  %10v   (%.2fx CKI)\n", c.Name, res.Time, float64(res.Time)/base)
	}
	fmt.Println("\nCKI and PVM exit directly to the L1 kernel; only CKI also keeps")
	fmt.Println("syscalls and page faults inside the container.")
}
