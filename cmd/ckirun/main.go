// Command ckirun boots a secure container on a chosen runtime and runs
// one named workload, printing virtual time, throughput and guest
// kernel statistics.
//
// Usage:
//
//	ckirun -runtime cki -workload btree
//	ckirun -runtime hvm -nested -workload gups
//	ckirun -runtime cki -workload btree -trace-out run.trace.json -metrics-out run.metrics.json
//	ckirun -list
//
// A run can be checkpointed into a CKISNAP1 image after the workload
// completes, and a later run can restore from one instead of
// cold-booting (the runtime configuration comes from the image; a
// corrupt or truncated image is rejected with an error):
//
//	ckirun -runtime cki -workload btree -checkpoint app.snap
//	ckirun -restore app.snap -workload btree
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/audit"
	"repro/internal/backends"
	"repro/internal/faults"
	"repro/internal/guest"
	"repro/internal/inspect"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	rt := flag.String("runtime", "cki", "runc | hvm | pvm | cki | gvisor")
	nested := flag.Bool("nested", false, "deploy inside an L1 IaaS VM")
	wl := flag.String("workload", "btree", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	dump := flag.Bool("dump", false, "dump the active address space after the run")
	traceN := flag.Int("trace", 0, "record the flow timeline and print its last N events")
	faultSeed := flag.Uint64("faults", 0, "run under a deterministic fault plan with this seed (0 = off)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run's flow spans to FILE")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot JSON to FILE")
	auditOut := flag.String("audit-out", "", "record the machine-event audit log to FILE (replay with ckireplay)")
	checkpointOut := flag.String("checkpoint", "", "checkpoint the container to a CKISNAP1 image FILE after the workload completes")
	restoreIn := flag.String("restore", "", "restore the container from a CKISNAP1 image FILE instead of cold-booting (-runtime/-nested come from the image)")
	flag.Parse()

	cat := workloads.Catalog()
	if *list {
		names := make([]string, 0, len(cat))
		for n := range cat {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	kinds := map[string]backends.Kind{
		"runc": backends.RunC, "hvm": backends.HVM,
		"pvm": backends.PVM, "cki": backends.CKI, "gvisor": backends.GVisor,
	}
	kind, ok := kinds[strings.ToLower(*rt)]
	if !ok {
		fmt.Fprintf(os.Stderr, "ckirun: unknown runtime %q\n", *rt)
		os.Exit(2)
	}
	runner, ok := cat[strings.ToLower(*wl)]
	if !ok {
		fmt.Fprintf(os.Stderr, "ckirun: unknown workload %q (try -list)\n", *wl)
		os.Exit(2)
	}
	var auditRec *audit.Recorder
	if *auditOut != "" {
		auditRec = audit.NewRecorder(nil)
		auditRec.Meta = audit.Meta{
			Kind:      "ckirun",
			Runtime:   strings.ToLower(*rt),
			Nested:    *nested,
			Workload:  strings.ToLower(*wl),
			FaultSeed: *faultSeed,
		}
	}
	var c *backends.Container
	var err error
	if *restoreIn != "" {
		// The audit recorder attaches at boot; a restored container's
		// boot is driven by the image, so the combination is rejected
		// rather than silently recording a partial log.
		if *auditOut != "" {
			fmt.Fprintf(os.Stderr, "ckirun: -audit-out cannot be combined with -restore\n")
			os.Exit(2)
		}
		blob, rerr := os.ReadFile(*restoreIn)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "ckirun: %v\n", rerr)
			os.Exit(1)
		}
		snap, rerr := snapshot.Decode(blob)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "ckirun: restore %s: %v\n", *restoreIn, rerr)
			os.Exit(1)
		}
		m, rerr := backends.NewMachine(snap.Config.HostFrames, snap.Config.TLBEntries)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "ckirun: restore: %v\n", rerr)
			os.Exit(1)
		}
		c, err = backends.Restore(m, snap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckirun: restore %s: %v\n", *restoreIn, err)
			os.Exit(1)
		}
		fmt.Printf("restored:    %s\n", snap.Describe())
	} else {
		c, err = backends.New(kind, backends.Options{Nested: *nested, Audit: auditRec})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckirun: boot: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceN > 0 {
		c.K.Trace = trace.New(4096)
	}
	// Span and metrics observers are nil-safe no-ops on the virtual
	// clock: attaching them changes no measured time. All timestamps are
	// virtual, so the artifacts are byte-identical across runs.
	var rec *trace.SpanRecorder
	var reg *metrics.Registry
	if *traceOut != "" || *metricsOut != "" {
		rec = trace.NewSpanRecorder(c.Clk)
		reg = metrics.NewRegistry()
		c.Observe(rec, metrics.NewFlowMetrics(reg, metrics.L("runtime", c.Name)))
	}
	writeArtifacts := func() {
		if *traceOut != "" {
			data := trace.ChromeTrace([]trace.TrackSet{
				{Name: c.Name + " " + strings.ToLower(*wl), Spans: rec.Spans()},
			})
			if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ckirun: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			c.CollectMetrics(reg, metrics.L("workload", strings.ToLower(*wl)))
			b, err := reg.Snapshot().JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckirun: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*metricsOut, append(b, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ckirun: %v\n", err)
				os.Exit(1)
			}
		}
		if *auditOut != "" {
			if err := auditRec.WriteFile(*auditOut); err != nil {
				fmt.Fprintf(os.Stderr, "ckirun: %v\n", err)
				os.Exit(1)
			}
		}
	}
	var plan *faults.Plan
	if *faultSeed != 0 {
		plan = faults.DefaultPlan(*faultSeed)
		c.InjectFaults(plan)
	}
	res, err := runner.Run(c)
	if err != nil {
		// Under fault injection a guest-kernel panic or an aborted
		// workload is an expected outcome, not a harness failure: report
		// the containment result and the replayable fault log instead of
		// exiting nonzero.
		if plan != nil {
			fmt.Printf("runtime:     %s\n", c.Name)
			if errors.Is(err, guest.EKERNELDIED) || c.K.Died() {
				fmt.Printf("outcome:     guest kernel panic (contained; host unaffected)\n")
				fmt.Printf("panic:       %s\n", c.K.PanicReason())
			} else {
				fmt.Printf("outcome:     workload aborted by injected fault: %v\n", err)
			}
			fmt.Printf("fault plan:  seed=%#x injected: %s\n", plan.Seed(), plan.Summary())
			for _, f := range plan.Log() {
				fmt.Printf("  fired %-12s at occurrence %d\n", f.Site, f.Seq)
			}
			if *traceN > 0 {
				fmt.Println()
				fmt.Print(c.K.Trace.Render(*traceN))
			}
			writeArtifacts()
			return
		}
		fmt.Fprintf(os.Stderr, "ckirun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("runtime:     %s\n", c.Name)
	fmt.Printf("workload:    %s\n", res.Workload)
	fmt.Printf("virtual time:%12v\n", res.Time)
	fmt.Printf("operations:  %12d  (%.0f ops/s, %v/op)\n", res.Ops, res.OpsPerSec(), res.PerOp())
	fmt.Printf("syscalls:    %12d\n", res.Syscalls)
	fmt.Printf("page faults: %12d\n", res.PageFaults)
	st := c.K.Stats
	fmt.Printf("guest totals: syscalls=%d pgfaults=%d ptewrites=%d ctxsw=%d hypercalls=%d\n",
		st.Syscalls, st.PageFaults, st.PTEWrites, st.CtxSwitches, st.Hypercalls)
	if plan != nil {
		fmt.Printf("fault plan:  seed=%#x injected: %s (survived)\n", plan.Seed(), plan.Summary())
	}
	if *dump {
		fmt.Println()
		fmt.Print(inspect.Render(c.HostMem, c.CPU.CR3()))
	}
	if *traceN > 0 {
		fmt.Println()
		fmt.Print(c.K.Trace.Render(*traceN))
	}
	if *checkpointOut != "" {
		blob, err := backends.CheckpointBytes(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckirun: checkpoint: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*checkpointOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ckirun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint:  %d bytes -> %s\n", len(blob), *checkpointOut)
	}
	writeArtifacts()
}
