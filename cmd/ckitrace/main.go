// Command ckitrace renders the simulator's flow decompositions and
// observability artifacts.
//
// Without -in it prints the static step-by-step cost decomposition of
// the context-switch flows the paper analyzes (Fig. 8, Fig. 10), which
// internal/bench/flows_test.go asserts against live measurements.
//
// With -in it loads a span profile written by `ckibench -exp smp
// -spans-out` and renders one of the measured views; all values come
// from recorded spans over the virtual clock, so every view is
// byte-identical across runs of the same seeded experiment.
//
// Usage:
//
//	ckitrace -flow pgfault -runtime pvm
//	ckitrace -flow syscall -runtime all
//	ckitrace -in smp.spans.json -breakdown     # Table-2-style attribution
//	ckitrace -in smp.spans.json -top 10        # hottest phases by self time
//	ckitrace -in smp.spans.json -chrome        # Chrome/Perfetto trace JSON
//	ckitrace -in smp.spans.json -folded        # flamegraph collapsed stacks
//	ckitrace -metrics smp.metrics.json         # render a metrics snapshot
//
// -since/-until restrict a profile view to the spans starting inside a
// virtual-time range (e.g. -since 120us -until 1.5ms; bare numbers are
// picoseconds). They combine with -top, -chrome, and -folded, but not
// with -breakdown, whose attribution is verified against the report's
// whole-run totals.
//
// With -tail it loads a BENCH_tail report written by `ckibench -exp
// tail -json` and renders per-request causal waterfalls — every
// lifecycle segment with its virtual start time and duration, plus the
// component attribution that sums exactly to the end-to-end latency:
//
//	ckitrace -tail BENCH_tail.json                          # list traced requests
//	ckitrace -tail BENCH_tail.json -request 633821815e6de0c8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ckitrace: "+format+"\n", args...)
	os.Exit(1)
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ckitrace: "+format+"\n", args...)
	os.Exit(2)
}

// validateSet rejects conflicting flag combinations instead of
// silently ignoring the losers. The four modes are mutually exclusive:
// -metrics, -in (plus exactly one view selector), -tail (optionally
// with -request), and the static flow decomposition (-flow/-runtime).
// Separated from flag.Visit so the rules are unit-testable.
func validateSet(set map[string]bool) error {
	views := []string{"breakdown", "top", "chrome", "folded"}
	nviews := 0
	for _, v := range views {
		if set[v] {
			nviews++
		}
	}
	switch {
	case set["metrics"]:
		for _, other := range append([]string{"in", "tail", "request", "flow", "runtime"}, views...) {
			if set[other] {
				return fmt.Errorf("-metrics cannot be combined with -%s", other)
			}
		}
	case set["tail"]:
		for _, other := range append([]string{"in", "flow", "runtime", "since", "until"}, views...) {
			if set[other] {
				return fmt.Errorf("-tail renders request waterfalls; it cannot be combined with -%s", other)
			}
		}
	case set["in"]:
		if set["request"] {
			return fmt.Errorf("-request requires -tail")
		}
		for _, other := range []string{"flow", "runtime"} {
			if set[other] {
				return fmt.Errorf("-in renders a recorded profile; -%s selects a static flow — pick one", other)
			}
		}
		if nviews == 0 {
			return fmt.Errorf("-in requires exactly one of -breakdown, -top N, -chrome, -folded")
		}
		if nviews > 1 {
			return fmt.Errorf("-breakdown, -top, -chrome and -folded are mutually exclusive")
		}
		if (set["since"] || set["until"]) && set["breakdown"] {
			return fmt.Errorf("-since/-until cannot be combined with -breakdown (its attribution is verified against whole-run totals)")
		}
	case set["request"]:
		return fmt.Errorf("-request requires -tail")
	case nviews > 0:
		return fmt.Errorf("-%s requires -in", firstSet(set, views))
	default:
		if set["since"] || set["until"] {
			return fmt.Errorf("-since/-until require -in")
		}
	}
	return nil
}

func validateFlags() {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateSet(set); err != nil {
		usage("%v", err)
	}
}

// parseSpanRange resolves -since/-until into a [since, until] span
// filter range (until 0 = unbounded), exiting 2 on bad input.
func parseSpanRange(since, until string) (clock.Time, clock.Time) {
	var lo, hi clock.Time
	var err error
	if since != "" {
		if lo, err = clock.ParseTime(since); err != nil {
			usage("-since: %v", err)
		}
	}
	if until != "" {
		if hi, err = clock.ParseTime(until); err != nil {
			usage("-until: %v", err)
		}
	}
	if hi != 0 && lo > hi {
		usage("-since %s is after -until %s", since, until)
	}
	return lo, hi
}

func firstSet(set map[string]bool, names []string) string {
	for _, n := range names {
		if set[n] {
			return n
		}
	}
	return names[0]
}

func profileViews(path string, breakdown, chrome, folded bool, top int, since, until clock.Time) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	prof, err := bench.ParseSMPProfile(data)
	if err != nil {
		fail("%v", err)
	}
	if since > 0 || until > 0 {
		for i := range prof.Runs {
			prof.Runs[i].Spans = trace.FilterSpans(prof.Runs[i].Spans, since, until)
		}
	}
	switch {
	case breakdown:
		if err := prof.WriteBreakdown(os.Stdout); err != nil {
			fail("%v", err)
		}
	case chrome:
		os.Stdout.Write(prof.ChromeJSON())
	case folded:
		fmt.Print(prof.FoldedStacks())
	case top > 0:
		for _, r := range prof.Runs {
			fmt.Printf("%s %dvcpu — top %d phases by self time:\n", r.Runtime, r.VCPUs, top)
			phases := trace.TopPhases(r.Spans)
			if len(phases) > top {
				phases = phases[:top]
			}
			for _, ph := range phases {
				fmt.Printf("  %-32s %10d x %14.3f ns\n", ph.Phase, ph.Count, ph.Self.Nanos())
			}
			fmt.Println()
		}
	default:
		fail("-in requires one of -breakdown, -top N, -chrome, -folded")
	}
}

// renderTail renders per-request causal waterfalls from a BENCH_tail
// report: with reqID the one request's full story, without it an index
// of every request that has a recorded waterfall.
func renderTail(path, reqID string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	rep := &bench.TailReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		fail("%s: %v", path, err)
	}
	if reqID == "" {
		fmt.Printf("requests with recorded waterfalls (render one with -request <id>):\n")
		for _, r := range rep.Rows {
			for _, wf := range r.Waterfalls {
				fmt.Printf("  %-10s %s  rank %-4d %10.3f ms\n",
					r.Runtime, wf.RequestID, wf.Rank, wf.LatencyMs)
			}
		}
		return
	}
	id, err := trace.ParseRequestID(reqID)
	if err != nil {
		usage("%v", err)
	}
	want := id.String()
	for _, r := range rep.Rows {
		for _, wf := range r.Waterfalls {
			if wf.RequestID != want {
				continue
			}
			c := wf.Components
			fmt.Printf("request %s — %s storm cell, slowness rank %d, latency %.3f ms\n",
				want, r.Runtime, wf.Rank, wf.LatencyMs)
			fmt.Printf("components (they sum exactly to the latency):\n")
			for _, p := range []struct {
				name string
				ps   int64
			}{
				{"queue", c.QueuePs}, {"boot", c.BootPs},
				{"warm_restore", c.WarmRestorePs}, {"service", c.ServicePs},
				{"storm_redo", c.StormRedoPs},
			} {
				if p.ps == 0 {
					continue
				}
				fmt.Printf("  %-14s %14s  %5.1f%%\n", p.name,
					clock.Time(p.ps).String(), 100*float64(p.ps)/float64(c.TotalPs))
			}
			fmt.Printf("  %-14s %14s  (%d placement(s), %d eviction(s))\n",
				"TOTAL", clock.Time(c.TotalPs).String(), c.Placements, c.Evictions)
			fmt.Printf("waterfall (virtual time):\n")
			for _, s := range wf.Steps {
				line := fmt.Sprintf("  %14s  %-14s", clock.Time(s.AtPs).String(), s.Kind)
				if s.DurPs > 0 {
					line += fmt.Sprintf("  +%s", clock.Time(s.DurPs).String())
				}
				if s.Outcome != "" {
					line += fmt.Sprintf("  [%s]", s.Outcome)
				}
				if s.Kind != trace.SegArrival && s.Kind != trace.SegReject {
					line += fmt.Sprintf("  node %d", s.Node)
				}
				fmt.Println(line)
			}
			return
		}
	}
	fail("request %s has no waterfall in %s (list them with -tail alone)", want, path)
}

func renderMetrics(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	snap, err := metrics.ParseSnapshot(data)
	if err != nil {
		fail("%v", err)
	}
	if err := snap.Render(os.Stdout); err != nil {
		fail("%v", err)
	}
}

func main() {
	flow := flag.String("flow", "pgfault", "syscall | pgfault | hypercall")
	rt := flag.String("runtime", "all", "runc | hvm | hvm-nst | pvm | cki | all")
	in := flag.String("in", "", "span profile JSON from ckibench -exp smp -spans-out")
	breakdown := flag.Bool("breakdown", false, "with -in: per-phase cycle attribution (verified against the report)")
	top := flag.Int("top", 0, "with -in: print the N hottest phases by self time per run")
	chrome := flag.Bool("chrome", false, "with -in: emit Chrome trace-event JSON")
	folded := flag.Bool("folded", false, "with -in: emit flamegraph collapsed stacks")
	metricsIn := flag.String("metrics", "", "render a metrics snapshot JSON written by -metrics-out")
	since := flag.String("since", "", "with -in: drop spans starting before this virtual time (e.g. 120us, 1.5ms; bare = ps)")
	until := flag.String("until", "", "with -in: drop spans starting after this virtual time")
	tailIn := flag.String("tail", "", "BENCH_tail report JSON from ckibench -exp tail -json")
	request := flag.String("request", "", "with -tail: render this request's causal waterfall (16-hex id)")
	flag.Parse()
	validateFlags()

	if *metricsIn != "" {
		renderMetrics(*metricsIn)
		return
	}
	if *tailIn != "" {
		renderTail(*tailIn, *request)
		return
	}
	if *in != "" {
		lo, hi := parseSpanRange(*since, *until)
		profileViews(*in, *breakdown, *chrome, *folded, *top, lo, hi)
		return
	}

	all := bench.Flows(clock.DefaultCosts())
	fl, ok := all[*flow]
	if !ok {
		fmt.Fprintf(os.Stderr, "ckitrace: unknown flow %q\n", *flow)
		os.Exit(2)
	}
	names := []string{"runc", "hvm", "hvm-nst", "pvm", "cki"}
	if *rt != "all" {
		names = []string{strings.ToLower(*rt)}
	}
	for _, n := range names {
		steps, ok := fl[n]
		if !ok {
			continue
		}
		fmt.Printf("%s / %s:\n", *flow, n)
		for _, s := range steps {
			fmt.Printf("  %-52s %8.0f ns\n", s.Name, s.Cost.Nanos())
		}
		fmt.Printf("  %-52s %8.0f ns\n\n", "TOTAL", bench.FlowTotal(steps).Nanos())
	}
}
