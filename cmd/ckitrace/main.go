// Command ckitrace prints the step-by-step cost decomposition of the
// context-switch flows the paper analyzes (Fig. 8, Fig. 10): which
// primitive operations compose a syscall, an anonymous page fault, or a
// hypercall on each runtime, and what each step costs. The
// decompositions are asserted against live measurements by
// internal/bench/flows_test.go, so this narrative cannot drift from
// the mechanism.
//
// Usage:
//
//	ckitrace -flow pgfault -runtime pvm
//	ckitrace -flow syscall -runtime all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/clock"
)

func main() {
	flow := flag.String("flow", "pgfault", "syscall | pgfault | hypercall")
	rt := flag.String("runtime", "all", "runc | hvm | hvm-nst | pvm | cki | all")
	flag.Parse()

	all := bench.Flows(clock.DefaultCosts())
	fl, ok := all[*flow]
	if !ok {
		fmt.Fprintf(os.Stderr, "ckitrace: unknown flow %q\n", *flow)
		os.Exit(2)
	}
	names := []string{"runc", "hvm", "hvm-nst", "pvm", "cki"}
	if *rt != "all" {
		names = []string{strings.ToLower(*rt)}
	}
	for _, n := range names {
		steps, ok := fl[n]
		if !ok {
			continue
		}
		fmt.Printf("%s / %s:\n", *flow, n)
		for _, s := range steps {
			fmt.Printf("  %-52s %8.0f ns\n", s.Name, s.Cost.Nanos())
		}
		fmt.Printf("  %-52s %8.0f ns\n\n", "TOTAL", bench.FlowTotal(steps).Nanos())
	}
}
