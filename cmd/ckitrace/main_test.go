package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestValidateSet covers the flag-combination rules: the four modes
// are mutually exclusive and every refinement flag needs its mode.
func TestValidateSet(t *testing.T) {
	mk := func(names ...string) map[string]bool {
		set := map[string]bool{}
		for _, n := range names {
			set[n] = true
		}
		return set
	}
	cases := []struct {
		name    string
		set     map[string]bool
		wantErr bool
	}{
		{"defaults", mk(), false},
		{"static flow", mk("flow", "runtime"), false},
		{"metrics", mk("metrics"), false},
		{"profile breakdown", mk("in", "breakdown"), false},
		{"profile top ranged", mk("in", "top", "since", "until"), false},
		{"tail list", mk("tail"), false},
		{"tail request", mk("tail", "request"), false},

		{"metrics with in", mk("metrics", "in"), true},
		{"metrics with tail", mk("metrics", "tail"), true},
		{"metrics with request", mk("metrics", "request"), true},
		{"tail with in", mk("tail", "in"), true},
		{"tail with view", mk("tail", "breakdown"), true},
		{"tail with flow", mk("tail", "flow"), true},
		{"tail with range", mk("tail", "since"), true},
		{"request without tail", mk("request"), true},
		{"request with in", mk("in", "breakdown", "request"), true},
		{"in without view", mk("in"), true},
		{"in two views", mk("in", "top", "chrome"), true},
		{"in with flow", mk("in", "folded", "flow"), true},
		{"breakdown ranged", mk("in", "breakdown", "since"), true},
		{"view without in", mk("chrome"), true},
		{"range without in", mk("until"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateSet(tc.set)
			if (err != nil) != tc.wantErr {
				t.Errorf("validateSet(%v) = %v, wantErr=%v", tc.set, err, tc.wantErr)
			}
		})
	}
}

var binPath string

// TestMain builds the real binary once: exit codes are asserted
// against it directly, because `go run` collapses every failure to
// exit 1 and would mask usage errors (2) as runtime errors (1).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ckitrace-bin")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "ckitrace")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("go build: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the built binary and returns its exit code and output.
func run(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(binPath, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("ckitrace %v: %v", args, err)
	}
	return ee.ExitCode(), string(out)
}

// tailFixture writes a minimal BENCH_tail report and returns its path
// plus the one waterfall's request id.
func tailFixture(t *testing.T) (string, string) {
	t.Helper()
	const id = "00000000000000ab"
	rep := &bench.TailReport{
		Seed: 1, Scale: 1, Nodes: 2, SlotsPerNode: 1, QueueLimit: 1, MeanReqs: 1, Sched: "spread",
		Rows: []bench.TailRow{{
			Runtime: "RunC", Completed: 1,
			Quantiles: []bench.TailQuantile{
				{Q: "p50", LatencyMs: 1, RequestID: id, Components: bench.TailComponents{ServicePs: 1000, TotalPs: 1000}},
				{Q: "p99", LatencyMs: 1, RequestID: id, Components: bench.TailComponents{ServicePs: 1000, TotalPs: 1000}},
				{Q: "p999", LatencyMs: 1, RequestID: id, Components: bench.TailComponents{ServicePs: 1000, TotalPs: 1000}},
			},
			Waterfalls: []bench.TailWaterfall{{
				RequestID: id, Rank: 1, LatencyMs: 1,
				Components: bench.TailComponents{ServicePs: 1000, TotalPs: 1000, Placements: 1},
				Steps: []bench.TailStep{
					{Kind: "arrival"}, {Kind: "placement", Outcome: "started"},
					{Kind: "service", DurPs: 1000}, {Kind: "complete", AtPs: 1000},
				},
			}},
		}},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_tail.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, id
}

// TestExitCodes pins the exit-code contract of the tail mode: 2 for
// usage errors, 1 for runtime failures, 0 with the expected rendering
// otherwise.
func TestExitCodes(t *testing.T) {
	fixture, id := tailFixture(t)
	missing := filepath.Join(t.TempDir(), "missing.json")
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"static default", nil, 0, "TOTAL"},
		{"tail list", []string{"-tail", fixture}, 0, id},
		{"tail waterfall", []string{"-tail", fixture, "-request", id}, 0, "storm cell, slowness rank 1"},
		{"request without tail", []string{"-request", id}, 2, "-request requires -tail"},
		{"tail with view", []string{"-tail", fixture, "-breakdown"}, 2, "cannot be combined"},
		{"tail bad id", []string{"-tail", fixture, "-request", "not-hex"}, 2, "bad request id"},
		{"tail zero id", []string{"-tail", fixture, "-request", "0"}, 2, "reserved"},
		{"tail missing file", []string{"-tail", missing}, 1, "no such file"},
		{"tail unknown request", []string{"-tail", fixture, "-request", "00000000000000ff"}, 1, "no waterfall"},
		{"unknown flow", []string{"-flow", "teleport"}, 2, "unknown flow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := run(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit = %d, want %d; output:\n%s", code, tc.code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestWaterfallRender pins the waterfall rendering shape: the
// component summary and every lifecycle step present.
func TestWaterfallRender(t *testing.T) {
	fixture, id := tailFixture(t)
	code, out := run(t, "-tail", fixture, "-request", id)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"request " + id, "components", "service", "100.0%", "TOTAL",
		"waterfall", "arrival", "placement", "[started]", "complete",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
}
