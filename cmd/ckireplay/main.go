// Command ckireplay inspects machine-level audit logs recorded by
// ckirun -audit-out and ckibench -exp smp -audit-out: it summarizes a
// log, greps events by kind, time-travels to any virtual timestamp,
// pinpoints the first divergence between two runs, and re-executes a
// log's run from its metadata to prove the recording is reproducible.
//
// Usage:
//
//	ckireplay -in run.log                      # summary: meta, counts, duration
//	ckireplay -in run.log -grep pte_write      # print matching events
//	ckireplay -in run.log -at 120us            # machine state at t=120us
//	ckireplay -in a.log -diff b.log            # first divergence (exit 1 if any)
//	ckireplay -in run.log -live                # re-execute from meta and diff
//	ckireplay -in run.log -json                # machine-readable output
//
// -at accepts ns/us/ms/s suffixes; a bare number is virtual picoseconds.
// Exit codes: 0 success (and logs identical), 1 divergence or error,
// 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/workloads"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ckireplay: "+format+"\n", args...)
	os.Exit(1)
}

func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ckireplay: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	in := flag.String("in", "", "audit log to inspect (required)")
	diff := flag.String("diff", "", "second log: report the first divergence from -in")
	at := flag.String("at", "", "reconstruct machine state at this virtual time (ns/us/ms/s suffix; bare = ps)")
	grep := flag.String("grep", "", "print events whose kind matches this substring")
	live := flag.Bool("live", false, "re-execute the run described by the log's metadata and diff")
	jsonOut := flag.Bool("json", false, "machine-readable output")
	flag.Parse()

	if *in == "" {
		usagef("-in is required")
	}
	modes := 0
	for _, set := range []bool{*diff != "", *at != "", *grep != "", *live} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		usagef("-diff, -at, -grep and -live are mutually exclusive")
	}
	log, err := audit.ReadFile(*in)
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *diff != "":
		other, err := audit.ReadFile(*diff)
		if err != nil {
			fatalf("%v", err)
		}
		runDiff(log.Events, other.Events, *jsonOut)
	case *at != "":
		t, err := clock.ParseTime(*at)
		if err != nil {
			usagef("%v", err)
		}
		runAt(log, t, *jsonOut)
	case *grep != "":
		runGrep(log, *grep, *jsonOut)
	case *live:
		runLive(log, *jsonOut)
	default:
		runSummary(log, *jsonOut)
	}
}

// runDiff prints the first divergence between two event streams and
// exits 1 when they differ.
func runDiff(a, b []audit.Event, jsonOut bool) {
	d := audit.FirstDivergence(a, b)
	if jsonOut {
		out := map[string]interface{}{"identical": d == nil}
		if d != nil {
			out["index"] = d.Index
			out["a"] = eventJSON(d.A)
			out["b"] = eventJSON(d.B)
		}
		emitJSON(out)
	} else {
		fmt.Println(d.String())
	}
	if d != nil {
		os.Exit(1)
	}
}

// runAt reconstructs machine state at virtual time t.
func runAt(log *audit.Log, t clock.Time, jsonOut bool) {
	s := audit.ReplayUntil(log.Events, t)
	if !jsonOut {
		fmt.Print(s.Render())
		return
	}
	vcpus := map[string]*audit.VCPUState{}
	for _, id := range s.VCPUIDs() {
		vcpus[strconv.Itoa(id)] = s.VCPU(id)
	}
	emitJSON(map[string]interface{}{
		"events_applied": s.N,
		"at_ps":          int64(s.At),
		"vcpus":          vcpus,
		"counts":         countsJSON(s.Counts()),
		"fingerprint":    s.Fingerprint(),
	})
}

// runGrep prints the events whose kind name contains the pattern.
func runGrep(log *audit.Log, pat string, jsonOut bool) {
	var hits []audit.Event
	for _, e := range log.Events {
		if strings.Contains(e.Kind.String(), pat) {
			hits = append(hits, e)
		}
	}
	if jsonOut {
		out := make([]map[string]interface{}, len(hits))
		for i, e := range hits {
			out[i] = eventJSON(&e)
		}
		emitJSON(out)
		return
	}
	for _, e := range hits {
		fmt.Println(e.String())
	}
	fmt.Fprintf(os.Stderr, "ckireplay: %d of %d events matched %q\n", len(hits), len(log.Events), pat)
}

// runSummary prints the run descriptor, duration and per-kind counts.
func runSummary(log *audit.Log, jsonOut bool) {
	var first, last clock.Time
	if n := len(log.Events); n > 0 {
		first, last = log.Events[0].At, log.Events[n-1].At
	}
	counts := audit.ReplayPrefix(log.Events, len(log.Events)).Counts()
	if jsonOut {
		emitJSON(map[string]interface{}{
			"meta":     log.Meta,
			"events":   len(log.Events),
			"first_ps": int64(first),
			"last_ps":  int64(last),
			"counts":   countsJSON(counts),
		})
		return
	}
	m := log.Meta
	fmt.Printf("log:      %d events, t=%v .. %v\n", len(log.Events), first, last)
	switch m.Kind {
	case "ckirun":
		fmt.Printf("run:      ckirun -runtime %s -workload %s", m.Runtime, m.Workload)
		if m.Nested {
			fmt.Print(" -nested")
		}
		if m.FaultSeed != 0 {
			fmt.Printf(" -faults %#x", m.FaultSeed)
		}
		fmt.Println()
	case "smp":
		fmt.Printf("run:      ckibench -exp smp (seed=%#x scale=%d)\n", m.Seed, m.Scale)
	default:
		fmt.Printf("run:      (no metadata)\n")
	}
	type kc struct {
		k audit.Kind
		n uint64
	}
	rows := make([]kc, 0, len(counts))
	for k, n := range counts {
		rows = append(rows, kc{k, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	for _, r := range rows {
		fmt.Printf("  %-16s %d\n", r.k, r.n)
	}
}

// runLive re-executes the run described by the log's metadata with a
// fresh recorder and diffs the two logs; a reproducible log exits 0.
func runLive(log *audit.Log, jsonOut bool) {
	rec := audit.NewRecorder(nil)
	switch log.Meta.Kind {
	case "ckirun":
		reliveCkirun(log.Meta, rec)
	case "smp":
		if _, err := bench.RunSMPAudited(log.Meta.Scale, log.Meta.Seed, rec); err != nil {
			fatalf("relive smp: %v", err)
		}
	default:
		fatalf("log has no run metadata; cannot re-execute")
	}
	if !jsonOut {
		fmt.Fprintf(os.Stderr, "ckireplay: re-executed %s run: %d events recorded, %d in log\n",
			log.Meta.Kind, rec.Len(), len(log.Events))
	}
	runDiff(log.Events, rec.Events(), jsonOut)
}

// reliveCkirun reboots the container and reruns the workload exactly as
// ckirun did when it recorded the log.
func reliveCkirun(m audit.Meta, rec *audit.Recorder) {
	kinds := map[string]backends.Kind{
		"runc": backends.RunC, "hvm": backends.HVM,
		"pvm": backends.PVM, "cki": backends.CKI, "gvisor": backends.GVisor,
	}
	kind, ok := kinds[m.Runtime]
	if !ok {
		fatalf("log metadata names unknown runtime %q", m.Runtime)
	}
	runner, ok := workloads.Catalog()[m.Workload]
	if !ok {
		fatalf("log metadata names unknown workload %q", m.Workload)
	}
	rec.Meta = m
	c, err := backends.New(kind, backends.Options{Nested: m.Nested, Audit: rec})
	if err != nil {
		fatalf("relive boot: %v", err)
	}
	var plan *faults.Plan
	if m.FaultSeed != 0 {
		plan = faults.DefaultPlan(m.FaultSeed)
		c.InjectFaults(plan)
	}
	if _, err := runner.Run(c); err != nil && plan == nil {
		// Under a fault plan a contained panic or abort is an expected,
		// fully recorded outcome — the diff decides reproducibility.
		fatalf("relive run: %v", err)
	}
}

func eventJSON(e *audit.Event) map[string]interface{} {
	if e == nil {
		return nil
	}
	return map[string]interface{}{
		"at_ps":  int64(e.At),
		"kind":   e.Kind.String(),
		"vcpu":   e.VCPU,
		"pcid":   e.PCID,
		"a":      e.A,
		"b":      e.B,
		"c":      e.C,
		"detail": e.Detail(),
	}
}

func countsJSON(counts map[audit.Kind]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(counts))
	for k, n := range counts {
		out[k.String()] = n
	}
	return out
}

func emitJSON(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("%v", err)
	}
}
