package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestValidateModes covers the mode rules: exactly one of
// -slo/-in/-bundle/-attr, refinements only with -in.
func TestValidateModes(t *testing.T) {
	cases := []struct {
		name                       string
		slo, in, bundle, attr, srs string
		tail                       int
		wantErr                    bool
	}{
		{"slo", "r.json", "", "", "", "", 20, false},
		{"in", "", "tl.ckits", "", "", "", 20, false},
		{"bundle", "", "", "b.json", "", "", 20, false},
		{"attr", "", "", "", "BENCH_tail.json", "", 20, false},
		{"in refined", "", "tl.ckits", "", "", "fleet_rejected_total", 5, false},
		{"in tail zero", "", "tl.ckits", "", "", "", 0, false},

		{"no mode", "", "", "", "", "", 20, true},
		{"two modes slo+in", "r.json", "tl.ckits", "", "", "", 20, true},
		{"two modes slo+attr", "r.json", "", "", "BENCH_tail.json", "", 20, true},
		{"two modes attr+bundle", "", "", "b.json", "BENCH_tail.json", "", 20, true},
		{"series without in", "r.json", "", "", "", "x", 20, true},
		{"series with attr", "", "", "", "BENCH_tail.json", "x", 20, true},
		{"tail with attr", "", "", "", "BENCH_tail.json", "", 5, true},
		{"tail negative", "", "tl.ckits", "", "", "", -1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateModes(tc.slo, tc.in, tc.bundle, tc.attr, tc.srs, tc.tail)
			if (err != nil) != tc.wantErr {
				t.Errorf("validateModes(%+v) = %v, wantErr=%v", tc, err, tc.wantErr)
			}
		})
	}
}

var binPath string

// TestMain builds the real binary once: exit codes are asserted
// against it directly, because `go run` collapses every failure to
// exit 1 and would mask usage errors (2) as runtime errors (1).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ckimon-bin")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "ckimon")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("go build: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the built binary and returns its exit code and output.
func run(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(binPath, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("ckimon %v: %v", args, err)
	}
	return ee.ExitCode(), string(out)
}

// attrFixture writes a minimal BENCH_tail report.
func attrFixture(t *testing.T) string {
	t.Helper()
	rep := &bench.TailReport{
		Seed: 1, Nodes: 2, SlotsPerNode: 1, Sched: "spread",
		Rows: []bench.TailRow{{
			Runtime: "RunC", Completed: 1, StormStartNs: 100, StormEndNs: 200,
			Quantiles: []bench.TailQuantile{
				{Q: "p50", LatencyMs: 1, RequestID: "00000000000000ab",
					Components: bench.TailComponents{ServicePs: 1000, TotalPs: 1000}},
			},
			Waterfalls: []bench.TailWaterfall{{
				RequestID: "00000000000000ab", Rank: 1, LatencyMs: 1,
				Components: bench.TailComponents{ServicePs: 1000, TotalPs: 1000},
			}},
		}},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_tail.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes pins the exit-code contract: 2 for usage errors, 1
// for runtime failures, 0 with the expected rendering otherwise.
func TestExitCodes(t *testing.T) {
	fixture := attrFixture(t)
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(t.TempDir(), "missing.json")
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"attr renders", []string{"-attr", fixture}, 0, "who pays the tail"},
		{"attr summary", []string{"-attr", fixture}, 0, "Tail-latency attribution"},
		{"no mode", nil, 2, "exactly one of"},
		{"attr with slo", []string{"-attr", fixture, "-slo", "r.json"}, 2, "exactly one of"},
		{"attr with series", []string{"-attr", fixture, "-series", "x"}, 2, "refine -in"},
		{"attr with tail", []string{"-attr", fixture, "-tail", "5"}, 2, "refine -in"},
		{"attr missing file", []string{"-attr", missing}, 1, "no such file"},
		{"attr empty report", []string{"-attr", empty}, 1, "no rows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := run(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit = %d, want %d; output:\n%s", code, tc.code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}
