// Command ckimon renders the live-telemetry artifacts: SLO reports,
// time-series timelines, and flight-recorder postmortem bundles. All
// timestamps are virtual, so every rendering is byte-identical across
// runs of the same seeded experiment.
//
// Usage:
//
//	ckimon -slo BENCH_slo.json               # alert timeline + per-window SLI tables
//	ckimon -in slo_timeline_RunC.ckits       # render a CKITS1 (or JSON) timeline
//	ckimon -in fleet.timeline.json -series fleet_rejected_total
//	ckimon -in run.ckits -tail 40            # last 40 windows per series
//	ckimon -bundle slo_bundle_RunC_0_alert.json
//	ckimon -attr BENCH_tail.json             # tail-latency attribution report
//
// Exactly one of -slo, -in, -bundle, -attr must be given; -series and
// -tail refine -in only. (-tail is the window count; the tail-latency
// report is -attr, whose per-request waterfalls ckitrace -tail
// renders.)
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/telemetry"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ckimon: "+format+"\n", args...)
	os.Exit(1)
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ckimon: "+format+"\n", args...)
	os.Exit(2)
}

func ns(v int64) string { return (clock.Time(v) * clock.Nanosecond).String() }

// labelStr renders a label map deterministically ({k=v,k=v}).
func labelStr(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// loadTimeline sniffs CKITS1 magic vs JSON export and returns the
// series plus the interval.
func loadTimeline(path string) (int64, []*telemetry.Series) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	if bytes.HasPrefix(data, []byte("CKITS1")) {
		st, err := telemetry.DecodeBinary(data)
		if err != nil {
			fail("%v", err)
		}
		return int64(st.Interval / clock.Nanosecond), st.Series()
	}
	var exp telemetry.Export
	if err := json.Unmarshal(data, &exp); err != nil {
		fail("%s: not a CKITS1 binary and not an export JSON: %v", path, err)
	}
	return exp.IntervalNs, exp.Series
}

func renderTimeline(path, series string, tail int) {
	intervalNs, all := loadTimeline(path)
	fmt.Printf("timeline %s: %d series, scrape interval %s\n\n", path, len(all), ns(intervalNs))
	shown := 0
	for _, s := range all {
		if series != "" && s.Name != series {
			continue
		}
		shown++
		fmt.Printf("%s%s (%s)\n", s.Name, labelStr(s.Labels), s.Kind)
		wins := s.Windows
		if tail > 0 && len(wins) > tail {
			fmt.Printf("  ... %d earlier windows elided (-tail %d)\n", len(wins)-tail, tail)
			wins = wins[len(wins)-tail:]
		}
		for _, w := range wins {
			switch s.Kind {
			case "counter":
				fmt.Printf("  t%-5d %12s  delta %10.0f  total %12.0f\n", w.Tick, ns(w.AtNs), w.Delta, w.Total)
			case "gauge":
				fmt.Printf("  t%-5d %12s  value %10.0f\n", w.Tick, ns(w.AtNs), w.Value)
			default:
				fmt.Printf("  t%-5d %12s  count %8d  p50 %12s  p99 %12s\n",
					w.Tick, ns(w.AtNs), w.Count, ns(int64(w.P50Ns)), ns(int64(w.P99Ns)))
			}
		}
		fmt.Println()
	}
	if series != "" && shown == 0 {
		fail("no series named %q in %s", series, path)
	}
}

func renderBundle(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var b telemetry.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		fail("%s: not a postmortem bundle: %v", path, err)
	}
	fmt.Printf("postmortem %s: reason=%s at %s", path, b.Reason, ns(b.AtNs))
	if b.Runtime != "" {
		fmt.Printf(" runtime=%s", b.Runtime)
	}
	if b.Node != 0 {
		fmt.Printf(" node=%d", b.Node)
	}
	fmt.Println()
	if a := b.Alert; a != nil {
		fmt.Printf("  alert: %s (%s) fired %s burn %.1f/%.1f %s\n",
			a.SLO, a.Severity, ns(a.FiredAtNs), a.ShortBurn, a.LongBurn, labelStr(a.Labels))
	}
	fmt.Printf("  %d series captured:\n", len(b.Series))
	for _, s := range b.Series {
		fmt.Printf("    %s%s: %d windows\n", s.Name, labelStr(s.Labels), len(s.Windows))
	}
	fmt.Printf("  %d spans in range", len(b.Spans))
	if n := len(b.Spans); n > 0 {
		fmt.Printf(" (last: %s at %s)", b.Spans[n-1].Phase, b.Spans[n-1].At)
	}
	fmt.Println()
	fmt.Printf("  %d machine events in range\n", len(b.Events))
	show := b.Events
	if len(show) > 10 {
		show = show[len(show)-10:]
	}
	for _, e := range show {
		fmt.Printf("    %12s vcpu%d %-18s %s\n",
			(clock.Time(e.AtPs)).String(), e.VCPU, e.Kind, e.Detail)
	}
}

func renderReport(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	rep := &bench.SLOReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		fail("%s: not a BENCH_slo report: %v", path, err)
	}
	if len(rep.Rows) == 0 {
		fail("%s: report has no rows", path)
	}
	if err := bench.WriteSLOTable(rep, os.Stdout); err != nil {
		fail("%v", err)
	}
	for _, r := range rep.Rows {
		t := bench.NewTable(
			fmt.Sprintf("%s — per-window SLIs (storm %s..%s, page threshold %.0f%% rejects)",
				r.Runtime, ns(r.StormStartNs), ns(r.StormEndNs), 100*0.01),
			"at", "reject%", "p99", "running", "queued", "down")
		for _, w := range r.Windows {
			t.Row(ns(w.AtNs),
				fmt.Sprintf("%.1f", 100*w.RejectRatio),
				fmt.Sprintf("%.2fms", w.P99Ms),
				fmt.Sprintf("%d", w.Running),
				fmt.Sprintf("%d", w.Queued),
				fmt.Sprintf("%d", w.DownNodes))
		}
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
}

// renderAttr renders a BENCH_tail report: the per-runtime attribution
// summary plus a quantile-attribution table naming the exact request
// paying each tail quantile.
func renderAttr(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	rep := &bench.TailReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		fail("%s: not a BENCH_tail report: %v", path, err)
	}
	if len(rep.Rows) == 0 {
		fail("%s: report has no rows", path)
	}
	if err := bench.WriteTailTable(rep, os.Stdout); err != nil {
		fail("%v", err)
	}
	pct := func(part, total int64) string {
		if total == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(total))
	}
	for _, r := range rep.Rows {
		t := bench.NewTable(
			fmt.Sprintf("%s — who pays the tail (storm %s..%s)",
				r.Runtime, ns(r.StormStartNs), ns(r.StormEndNs)),
			"q", "request", "latency", "queue", "boot", "restore", "service", "redo", "evictions")
		for _, q := range r.Quantiles {
			c := q.Components
			t.Row(q.Q, q.RequestID,
				fmt.Sprintf("%.2fms", q.LatencyMs),
				pct(c.QueuePs, c.TotalPs), pct(c.BootPs, c.TotalPs),
				pct(c.WarmRestorePs, c.TotalPs), pct(c.ServicePs, c.TotalPs),
				pct(c.StormRedoPs, c.TotalPs), fmt.Sprintf("%d", c.Evictions))
		}
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
}

// validateModes is the flag-combination rule, separated from main so
// it is unit-testable: exactly one mode, refinements only with -in.
func validateModes(slo, in, bundle, attr, series string, tail int) error {
	modes := 0
	for _, m := range []string{slo, in, bundle, attr} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		return errors.New("exactly one of -slo, -in, -bundle, -attr is required")
	}
	if (series != "" || tail != 20) && in == "" {
		return errors.New("-series/-tail refine -in")
	}
	if tail < 0 {
		return errors.New("-tail must be >= 0")
	}
	return nil
}

func main() {
	slo := flag.String("slo", "", "render a BENCH_slo report (ckibench -exp slo -json)")
	in := flag.String("in", "", "render a timeline: CKITS1 binary or export JSON (ckibench -slo-out)")
	bundle := flag.String("bundle", "", "render a flight-recorder postmortem bundle (ckibench -bundle-out)")
	attr := flag.String("attr", "", "render a BENCH_tail attribution report (ckibench -exp tail -json)")
	series := flag.String("series", "", "with -in: show only this series name")
	tail := flag.Int("tail", 20, "with -in: show at most the last N windows per series (0 = all)")
	flag.Parse()

	if err := validateModes(*slo, *in, *bundle, *attr, *series, *tail); err != nil {
		usage("%v", err)
	}

	switch {
	case *slo != "":
		renderReport(*slo)
	case *in != "":
		renderTimeline(*in, *series, *tail)
	case *attr != "":
		renderAttr(*attr)
	default:
		renderBundle(*bundle)
	}
}
