// Command ckibench regenerates the paper's tables and figures.
//
// Usage:
//
//	ckibench                 # run every experiment at scale 1
//	ckibench -exp fig12      # run one experiment
//	ckibench -scale 4        # larger workloads (slower, smoother)
//	ckibench -list           # list experiment ids
//
// Grid experiments fan their independent cells out to host goroutines;
// -parallel caps the fan-out (default GOMAXPROCS). Every artifact is
// byte-identical for any -parallel value — cells are fully isolated
// simulations on their own virtual clocks, assembled in a fixed order.
//
//	ckibench -exp smp -json -parallel 8
//	ckibench -exp chaos -json -seeds 16 -parallel 8   # seed sweep
//
// The smp experiment can additionally emit observability artifacts
// (all timestamps are virtual, so the bytes are identical across runs):
//
//	ckibench -exp smp -trace-out smp.trace.json    # Chrome/Perfetto trace
//	ckibench -exp smp -spans-out smp.spans.json    # span profile (ckitrace -in)
//	ckibench -exp smp -metrics-out smp.metrics.json
//	ckibench -exp smp -audit-out smp.audit.log     # machine-event log (ckireplay -in)
//
// It can also be gated against a committed baseline report, failing the
// invocation when throughput regresses beyond the tolerance:
//
//	ckibench -exp smp -baseline BENCH_smp.json
//
// The wallclock experiment measures the simulator itself (host ns/op,
// allocs/op, parallel speedup) and emits the BENCH_wallclock artifact:
//
//	ckibench -exp wallclock > BENCH_wallclock.json
//
// The snapshot experiment measures checkpoint/restore latency, live
// migration (iterative pre-copy with dirty-page tracking) and
// warm-vs-cold restart recovery, emitting the BENCH_snapshot artifact;
// -snap-out additionally writes a CKISNAP1 checkpoint image (the CI
// smoke job corrupts a copy, then restores the intact one):
//
//	ckibench -exp snapshot -json > BENCH_snapshot.json
//	ckibench -exp snapshot -snap-out cki.snap
//
// The fleet experiment simulates datacenter-scale serving: open-loop
// heavy-traffic arrivals placed across a fleet of simulated nodes by a
// pluggable scheduler, with capacity curves, p50/p99/p999 tails, and a
// per-node machine replay stage. It emits the BENCH_fleet artifact:
//
//	ckibench -exp fleet -json > BENCH_fleet.json
//	ckibench -exp fleet -nodes 8 -sched spread       # smaller fleet, one scheduler
//	ckibench -exp fleet -arrival-rate 50000          # one segment at 50k arrivals/s
//	ckibench -exp fleet -trace-file diurnal.trace    # piecewise rate trace
//
// The tail experiment traces every request's lifecycle through the
// eviction-storm scenario and attributes tail latency to exact causal
// components (queue, boot, warm restore, service, storm redo — they
// sum to the end-to-end latency, picosecond-exact), with bucket
// exemplars and top-K waterfalls. It emits the BENCH_tail artifact;
// ckitrace -tail renders any request's waterfall from it:
//
//	ckibench -exp tail -json > BENCH_tail.json
//	ckibench -exp tail -nodes 8                      # smaller fleet
//
// The serverless experiment measures cold-start latency and high-churn
// serving under the fork-from-snapshot fast path: per-runtime
// calibration of the four instantiation paths (cold boot, eager
// restore, COW fork, lazy fork), a machine-level churn loop against
// one shared page store, and a fleet churn grid with per-request
// cold-start attribution. It emits the BENCH_serverless artifact:
//
//	ckibench -exp serverless -json > BENCH_serverless.json
//	ckibench -exp serverless -fork-mode lazy         # one instantiation mode
//	ckibench -exp serverless -churn-rate 30000       # absolute arrival rate
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"strings"

	"repro/internal/audit"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

// writeTimeline writes a merged fleet timeline: CKITS1 binary when the
// path ends in .ckits, JSON export otherwise.
func writeTimeline(path string, st *telemetry.Store) error {
	if st == nil {
		return errors.New("-slo-out: no timeline collected (is -scrape-interval set?)")
	}
	if strings.HasSuffix(path, ".ckits") {
		return os.WriteFile(path, st.EncodeBinary(), 0o644)
	}
	b, err := st.Export().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
		os.Exit(1)
	}
}

// gateBaseline compares cur against the committed report at path and
// exits non-zero when any runtime's throughput regressed beyond the
// default tolerance — the perf-trajectory gate CI runs on every change.
func gateBaseline(path string, cur *bench.SMPReport) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: baseline: %v\n", err)
		os.Exit(1)
	}
	old := &bench.SMPReport{}
	if err := json.Unmarshal(b, old); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: baseline %s: %v\n", path, err)
		os.Exit(1)
	}
	deltas, err := bench.CompareReports(old, cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: baseline: %v\n", err)
		os.Exit(1)
	}
	if err := bench.WriteDeltaTable(deltas, bench.DefaultRegressionTolerance, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
		os.Exit(1)
	}
	if bad := bench.ThroughputRegressions(deltas, bench.DefaultRegressionTolerance); len(bad) > 0 {
		for _, d := range bad {
			fmt.Fprintf(os.Stderr, "ckibench: REGRESSION: %s x%d throughput %.0f -> %.0f (%+.1f%%)\n",
				d.Runtime, d.VCPUs, d.Old, d.New, 100*d.Rel)
		}
		os.Exit(1)
	}
	fmt.Printf("baseline gate: PASS (throughput within %.0f%% of %s)\n",
		100*bench.DefaultRegressionTolerance, path)
}

// config is the parsed flag set, separated from flag.Parse so the
// validation rules are unit-testable.
type config struct {
	exp        string
	scale      int
	jsonOut    bool
	traceOut   string
	spansOut   string
	metricsOut string
	auditOut   string
	baseline   string
	parallel   int
	seeds      int
	snapOut    string
	interval   int
	nodes      int
	sched      string
	arrival    float64
	traceFile  string
	scrapeIv   string
	sloOut     string
	bundleOut  string
	churnRate  float64
	forkMode   string
}

// fleetFlags reports whether any fleet-only flag is set (-nodes is
// shared with -exp slo and validated separately).
func (c config) fleetFlags() bool {
	return c.sched != "" || c.arrival != 0 || c.traceFile != ""
}

// parseScrapeInterval resolves -scrape-interval ("" = unset).
func (c config) parseScrapeInterval() (clock.Time, error) {
	if c.scrapeIv == "" {
		return 0, nil
	}
	d, err := clock.ParseTime(c.scrapeIv)
	if err != nil {
		return 0, fmt.Errorf("-scrape-interval: %w", err)
	}
	if d <= 0 {
		return 0, errors.New("-scrape-interval must be > 0")
	}
	return d, nil
}

// needProf reports whether any span/metrics artifact flag is set.
func (c config) needProf() bool {
	return c.traceOut != "" || c.spansOut != "" || c.metricsOut != ""
}

// validate returns a usage error (exit 2) for flag combinations that
// would otherwise be silently ignored or are meaningless.
func validate(c config) error {
	if c.parallel < 1 {
		return errors.New("-parallel must be >= 1")
	}
	if c.seeds < 1 {
		return errors.New("-seeds must be >= 1")
	}
	if (c.needProf() || c.auditOut != "" || c.baseline != "") && c.exp != "smp" {
		return errors.New("-trace-out/-spans-out/-metrics-out/-audit-out/-baseline require -exp smp")
	}
	if c.needProf() && c.auditOut != "" {
		return errors.New("-audit-out cannot be combined with the span/metrics artifact flags")
	}
	if c.seeds > 1 && !(c.exp == "chaos" && c.jsonOut) {
		return errors.New("-seeds requires -exp chaos -json")
	}
	if c.interval < 1 {
		return errors.New("-checkpoint-interval must be >= 1")
	}
	if (c.snapOut != "" || c.interval != 1) && c.exp != "snapshot" {
		return errors.New("-snap-out/-checkpoint-interval require -exp snapshot")
	}
	if c.fleetFlags() && c.exp != "fleet" {
		return errors.New("-sched/-arrival-rate/-trace-file require -exp fleet")
	}
	if c.nodes != 0 && c.exp != "fleet" && c.exp != "slo" && c.exp != "tail" && c.exp != "serverless" {
		return errors.New("-nodes requires -exp fleet, slo, tail, or serverless")
	}
	if c.nodes < 0 {
		return errors.New("-nodes must be >= 1")
	}
	if c.scrapeIv != "" {
		if c.exp != "fleet" && c.exp != "slo" {
			return errors.New("-scrape-interval requires -exp fleet or -exp slo")
		}
		if _, err := c.parseScrapeInterval(); err != nil {
			return err
		}
	}
	switch {
	case c.sloOut == "":
	case c.exp == "slo":
	case c.exp == "fleet":
		if c.scrapeIv == "" {
			return errors.New("-slo-out with -exp fleet requires an explicit -scrape-interval (every cell must share one interval for the merged timeline)")
		}
	default:
		return errors.New("-slo-out requires -exp fleet or -exp slo")
	}
	if c.bundleOut != "" && c.exp != "slo" {
		return errors.New("-bundle-out requires -exp slo")
	}
	if c.sched != "" {
		if _, err := fleet.SchedulerByName(c.sched); err != nil {
			return err
		}
	}
	if c.arrival < 0 {
		return errors.New("-arrival-rate must be > 0")
	}
	if c.arrival != 0 && c.traceFile != "" {
		return errors.New("-arrival-rate and -trace-file are mutually exclusive")
	}
	if (c.churnRate != 0 || c.forkMode != "") && c.exp != "serverless" {
		return errors.New("-churn-rate/-fork-mode require -exp serverless")
	}
	if c.churnRate < 0 {
		return errors.New("-churn-rate must be > 0")
	}
	switch c.forkMode {
	case "", "cold", "eager", "cow", "lazy":
	default:
		return fmt.Errorf("-fork-mode must be cold, eager, cow, or lazy (got %q)", c.forkMode)
	}
	if c.jsonOut && c.exp != "chaos" && c.exp != "smp" && c.exp != "wallclock" && c.exp != "snapshot" && c.exp != "fleet" && c.exp != "slo" && c.exp != "tail" && c.exp != "serverless" {
		return errors.New("-json is only supported with -exp chaos, smp, wallclock, snapshot, fleet, slo, tail, or serverless")
	}
	return nil
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.exp, "exp", "", "experiment id (empty = all)")
	flag.IntVar(&cfg.scale, "scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit a JSON report instead of a table (chaos, smp, wallclock)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "with -exp smp: write a Chrome trace-event JSON to FILE")
	flag.StringVar(&cfg.spansOut, "spans-out", "", "with -exp smp: write the span profile JSON to FILE")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "with -exp smp: write the metrics snapshot JSON to FILE")
	flag.StringVar(&cfg.auditOut, "audit-out", "", "with -exp smp: record the machine-event audit log to FILE")
	flag.StringVar(&cfg.baseline, "baseline", "", "with -exp smp: compare against a committed report and fail on >10% throughput regression")
	flag.IntVar(&cfg.parallel, "parallel", bench.DefaultParallel(), "max grid cells run concurrently (artifacts are byte-identical for any value)")
	flag.IntVar(&cfg.seeds, "seeds", 1, "with -exp chaos -json: sweep this many derived seeds")
	flag.StringVar(&cfg.snapOut, "snap-out", "", "with -exp snapshot: write the CKI cell's CKISNAP1 checkpoint image to FILE")
	flag.IntVar(&cfg.interval, "checkpoint-interval", 1, "with -exp snapshot: supervised rounds between periodic checkpoints in the warm-restart comparison")
	flag.IntVar(&cfg.nodes, "nodes", 0, "with -exp fleet/slo/tail/serverless: simulated node count")
	flag.StringVar(&cfg.sched, "sched", "", "with -exp fleet: restrict to one scheduler (binpack, spread; default both)")
	flag.Float64Var(&cfg.arrival, "arrival-rate", 0, "with -exp fleet: replace the capacity curve with one open-loop segment at this rate (arrivals/sec)")
	flag.StringVar(&cfg.traceFile, "trace-file", "", "with -exp fleet: drive arrivals from a piecewise rate trace file (\"rate_per_sec duration_ms\" lines)")
	flag.StringVar(&cfg.scrapeIv, "scrape-interval", "", "with -exp fleet/slo: virtual scrape interval (e.g. 250us, 1.5ms; bare numbers are ps)")
	flag.StringVar(&cfg.sloOut, "slo-out", "", "with -exp slo: write per-runtime CKITS1 timelines under DIR; with -exp fleet -scrape-interval: write the merged timeline to FILE (.ckits = binary, else JSON)")
	flag.StringVar(&cfg.bundleOut, "bundle-out", "", "with -exp slo: write the postmortem bundles as JSON under DIR")
	flag.Float64Var(&cfg.churnRate, "churn-rate", 0, "with -exp serverless: replace the derived churn arrival rate with this absolute rate (arrivals/sec)")
	flag.StringVar(&cfg.forkMode, "fork-mode", "", "with -exp serverless: restrict the fleet stage to one instantiation mode (cold, eager, cow, lazy; default all)")
	flag.Parse()

	if err := validate(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
		os.Exit(2)
	}

	if cfg.exp == "wallclock" {
		rep, err := bench.RunWallclock(bench.WallclockOpts{Scale: cfg.scale})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: wallclock: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteWallclockJSON(rep, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: wallclock: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if cfg.exp == "slo" {
		interval, _ := cfg.parseScrapeInterval()
		rep, err := bench.RunSLO(bench.SLOOpts{
			Scale: cfg.scale, Parallel: cfg.parallel,
			Nodes: cfg.nodes, ScrapeInterval: interval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: slo: %v\n", err)
			os.Exit(1)
		}
		if cfg.sloOut != "" {
			if err := bench.WriteSLOTimelines(rep, cfg.sloOut); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: slo: %v\n", err)
				os.Exit(1)
			}
		}
		if cfg.bundleOut != "" {
			if err := bench.WriteSLOBundles(rep, cfg.bundleOut); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: slo: %v\n", err)
				os.Exit(1)
			}
		}
		var werr error
		if cfg.jsonOut {
			werr = bench.WriteSLOJSON(rep, os.Stdout)
		} else {
			werr = bench.WriteSLOTable(rep, os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ckibench: slo: %v\n", werr)
			os.Exit(1)
		}
		return
	}

	if cfg.exp == "tail" {
		rep, err := bench.RunTail(bench.TailOpts{
			Scale: cfg.scale, Parallel: cfg.parallel, Nodes: cfg.nodes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: tail: %v\n", err)
			os.Exit(1)
		}
		var werr error
		if cfg.jsonOut {
			werr = bench.WriteTailJSON(rep, os.Stdout)
		} else {
			werr = bench.WriteTailTable(rep, os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ckibench: tail: %v\n", werr)
			os.Exit(1)
		}
		return
	}

	if cfg.exp == "serverless" {
		rep, err := bench.RunServerless(bench.ServerlessOpts{
			Scale: cfg.scale, Parallel: cfg.parallel, Nodes: cfg.nodes,
			ChurnRate: cfg.churnRate, ForkMode: cfg.forkMode,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: serverless: %v\n", err)
			os.Exit(1)
		}
		var werr error
		if cfg.jsonOut {
			werr = bench.WriteServerlessJSON(rep, os.Stdout)
		} else {
			werr = bench.WriteServerlessTable(rep, os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ckibench: serverless: %v\n", werr)
			os.Exit(1)
		}
		return
	}

	if cfg.exp == "fleet" {
		interval, _ := cfg.parseScrapeInterval()
		rep, err := bench.RunFleet(bench.FleetOpts{
			Scale: cfg.scale, Parallel: cfg.parallel,
			Nodes: cfg.nodes, Sched: cfg.sched,
			ArrivalRate: cfg.arrival, TraceFile: cfg.traceFile,
			ScrapeInterval: interval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: fleet: %v\n", err)
			os.Exit(1)
		}
		if cfg.sloOut != "" {
			if err := writeTimeline(cfg.sloOut, rep.Timeline); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: fleet: %v\n", err)
				os.Exit(1)
			}
		}
		var werr error
		if cfg.jsonOut {
			werr = bench.WriteFleetJSON(rep, os.Stdout)
		} else {
			werr = bench.WriteFleetTable(rep, os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ckibench: fleet: %v\n", werr)
			os.Exit(1)
		}
		return
	}

	if cfg.exp == "snapshot" {
		rep, err := bench.RunSnapshot(cfg.scale, cfg.parallel, cfg.interval)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: snapshot: %v\n", err)
			os.Exit(1)
		}
		if cfg.snapOut != "" {
			blob := rep.CheckpointBlob("CKI-BM")
			if blob == nil {
				fmt.Fprintf(os.Stderr, "ckibench: snapshot: no CKI checkpoint in report\n")
				os.Exit(1)
			}
			writeFile(cfg.snapOut, blob)
		}
		var werr error
		if cfg.jsonOut {
			werr = bench.WriteSnapshotJSON(rep, os.Stdout)
		} else {
			werr = bench.WriteSnapshotTable(rep, os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ckibench: snapshot: %v\n", werr)
			os.Exit(1)
		}
		return
	}

	if cfg.needProf() || cfg.auditOut != "" || cfg.baseline != "" {
		var rep *bench.SMPReport
		switch {
		case cfg.needProf():
			prof, err := bench.RunSMPProfiledParallel(cfg.scale, bench.SMPSeed, cfg.parallel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
			if cfg.traceOut != "" {
				writeFile(cfg.traceOut, prof.ChromeJSON())
			}
			if cfg.spansOut != "" {
				b, err := prof.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
					os.Exit(1)
				}
				writeFile(cfg.spansOut, append(b, '\n'))
			}
			if cfg.metricsOut != "" {
				b, err := prof.MetricsJSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
					os.Exit(1)
				}
				writeFile(cfg.metricsOut, append(b, '\n'))
			}
			rep = prof.Report
		case cfg.auditOut != "":
			rec := audit.NewRecorder(nil)
			var err error
			rep, err = bench.RunSMPAuditedParallel(cfg.scale, bench.SMPSeed, rec, cfg.parallel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
			if err := rec.WriteFile(cfg.auditOut); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
				os.Exit(1)
			}
		default:
			var err error
			rep, err = bench.RunSMPParallel(cfg.scale, bench.SMPSeed, cfg.parallel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
		}
		// The report is byte-identical however it was produced (the
		// observers are clock-neutral), so the usual outputs remain
		// available in the same invocation.
		if cfg.jsonOut {
			if err := bench.WriteSMPReportJSON(rep, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
		} else if err := bench.WriteSMPTable(rep, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
			os.Exit(1)
		}
		if cfg.baseline != "" {
			gateBaseline(cfg.baseline, rep)
		}
		return
	}

	if cfg.jsonOut {
		var emit func(int, io.Writer) error
		switch cfg.exp {
		case "chaos":
			if cfg.seeds > 1 {
				emit = func(s int, w io.Writer) error {
					return bench.ChaosSweepJSON(s, cfg.seeds, cfg.parallel, w)
				}
			} else {
				emit = bench.ChaosJSON
			}
		case "smp":
			emit = func(s int, w io.Writer) error {
				return bench.SMPJSONParallel(s, cfg.parallel, w)
			}
		}
		if err := emit(cfg.scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", cfg.exp, err)
			os.Exit(1)
		}
		return
	}

	everything := append(bench.All(), bench.Extensions()...)
	if *list {
		for _, e := range everything {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := func(e bench.Experiment) {
		fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
		if err := e.Run(cfg.scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if cfg.exp != "" {
		for _, e := range everything {
			if e.ID == cfg.exp {
				run(e)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "ckibench: unknown experiment %q (try -list)\n", cfg.exp)
		os.Exit(2)
	}
	for _, e := range everything {
		run(e)
	}
}
