// Command ckibench regenerates the paper's tables and figures.
//
// Usage:
//
//	ckibench                 # run every experiment at scale 1
//	ckibench -exp fig12      # run one experiment
//	ckibench -scale 4        # larger workloads (slower, smoother)
//	ckibench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all)")
	scale := flag.Int("scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of a table (chaos and smp)")
	flag.Parse()

	if *jsonOut {
		var emit func(int, io.Writer) error
		switch *exp {
		case "chaos":
			emit = bench.ChaosJSON
		case "smp":
			emit = bench.SMPJSON
		default:
			fmt.Fprintln(os.Stderr, "ckibench: -json is only supported with -exp chaos or -exp smp")
			os.Exit(2)
		}
		if err := emit(*scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}

	everything := append(bench.All(), bench.Extensions()...)
	if *list {
		for _, e := range everything {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := func(e bench.Experiment) {
		fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
		if err := e.Run(*scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if *exp != "" {
		for _, e := range everything {
			if e.ID == *exp {
				run(e)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "ckibench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	for _, e := range everything {
		run(e)
	}
}
