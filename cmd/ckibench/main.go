// Command ckibench regenerates the paper's tables and figures.
//
// Usage:
//
//	ckibench                 # run every experiment at scale 1
//	ckibench -exp fig12      # run one experiment
//	ckibench -scale 4        # larger workloads (slower, smoother)
//	ckibench -list           # list experiment ids
//
// The smp experiment can additionally emit observability artifacts
// (all timestamps are virtual, so the bytes are identical across runs):
//
//	ckibench -exp smp -trace-out smp.trace.json    # Chrome/Perfetto trace
//	ckibench -exp smp -spans-out smp.spans.json    # span profile (ckitrace -in)
//	ckibench -exp smp -metrics-out smp.metrics.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all)")
	scale := flag.Int("scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of a table (chaos and smp)")
	traceOut := flag.String("trace-out", "", "with -exp smp: write a Chrome trace-event JSON to FILE")
	spansOut := flag.String("spans-out", "", "with -exp smp: write the span profile JSON to FILE")
	metricsOut := flag.String("metrics-out", "", "with -exp smp: write the metrics snapshot JSON to FILE")
	flag.Parse()

	if *traceOut != "" || *spansOut != "" || *metricsOut != "" {
		if *exp != "smp" {
			fmt.Fprintln(os.Stderr, "ckibench: -trace-out/-spans-out/-metrics-out require -exp smp")
			os.Exit(2)
		}
		prof, err := bench.RunSMPProfiled(*scale, bench.SMPSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
			os.Exit(1)
		}
		if *traceOut != "" {
			writeFile(*traceOut, prof.ChromeJSON())
		}
		if *spansOut != "" {
			b, err := prof.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
				os.Exit(1)
			}
			writeFile(*spansOut, append(b, '\n'))
		}
		if *metricsOut != "" {
			b, err := prof.MetricsJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
				os.Exit(1)
			}
			writeFile(*metricsOut, append(b, '\n'))
		}
		// The report itself is byte-identical to an unprofiled run, so
		// the usual outputs remain available in the same invocation.
		if *jsonOut {
			if err := bench.WriteSMPReportJSON(prof.Report, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
		} else if err := bench.WriteSMPTable(prof.Report, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		var emit func(int, io.Writer) error
		switch *exp {
		case "chaos":
			emit = bench.ChaosJSON
		case "smp":
			emit = bench.SMPJSON
		default:
			fmt.Fprintln(os.Stderr, "ckibench: -json is only supported with -exp chaos or -exp smp")
			os.Exit(2)
		}
		if err := emit(*scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}

	everything := append(bench.All(), bench.Extensions()...)
	if *list {
		for _, e := range everything {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := func(e bench.Experiment) {
		fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
		if err := e.Run(*scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if *exp != "" {
		for _, e := range everything {
			if e.ID == *exp {
				run(e)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "ckibench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	for _, e := range everything {
		run(e)
	}
}
