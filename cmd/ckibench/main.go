// Command ckibench regenerates the paper's tables and figures.
//
// Usage:
//
//	ckibench                 # run every experiment at scale 1
//	ckibench -exp fig12      # run one experiment
//	ckibench -scale 4        # larger workloads (slower, smoother)
//	ckibench -list           # list experiment ids
//
// The smp experiment can additionally emit observability artifacts
// (all timestamps are virtual, so the bytes are identical across runs):
//
//	ckibench -exp smp -trace-out smp.trace.json    # Chrome/Perfetto trace
//	ckibench -exp smp -spans-out smp.spans.json    # span profile (ckitrace -in)
//	ckibench -exp smp -metrics-out smp.metrics.json
//	ckibench -exp smp -audit-out smp.audit.log     # machine-event log (ckireplay -in)
//
// It can also be gated against a committed baseline report, failing the
// invocation when throughput regresses beyond the tolerance:
//
//	ckibench -exp smp -baseline BENCH_smp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/audit"
	"repro/internal/bench"
)

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
		os.Exit(1)
	}
}

// gateBaseline compares cur against the committed report at path and
// exits non-zero when any runtime's throughput regressed beyond the
// default tolerance — the perf-trajectory gate CI runs on every change.
func gateBaseline(path string, cur *bench.SMPReport) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: baseline: %v\n", err)
		os.Exit(1)
	}
	old := &bench.SMPReport{}
	if err := json.Unmarshal(b, old); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: baseline %s: %v\n", path, err)
		os.Exit(1)
	}
	deltas, err := bench.CompareReports(old, cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: baseline: %v\n", err)
		os.Exit(1)
	}
	if err := bench.WriteDeltaTable(deltas, bench.DefaultRegressionTolerance, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
		os.Exit(1)
	}
	if bad := bench.ThroughputRegressions(deltas, bench.DefaultRegressionTolerance); len(bad) > 0 {
		for _, d := range bad {
			fmt.Fprintf(os.Stderr, "ckibench: REGRESSION: %s x%d throughput %.0f -> %.0f (%+.1f%%)\n",
				d.Runtime, d.VCPUs, d.Old, d.New, 100*d.Rel)
		}
		os.Exit(1)
	}
	fmt.Printf("baseline gate: PASS (throughput within %.0f%% of %s)\n",
		100*bench.DefaultRegressionTolerance, path)
}

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all)")
	scale := flag.Int("scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of a table (chaos and smp)")
	traceOut := flag.String("trace-out", "", "with -exp smp: write a Chrome trace-event JSON to FILE")
	spansOut := flag.String("spans-out", "", "with -exp smp: write the span profile JSON to FILE")
	metricsOut := flag.String("metrics-out", "", "with -exp smp: write the metrics snapshot JSON to FILE")
	auditOut := flag.String("audit-out", "", "with -exp smp: record the machine-event audit log to FILE")
	baseline := flag.String("baseline", "", "with -exp smp: compare against a committed report and fail on >10% throughput regression")
	flag.Parse()

	needProf := *traceOut != "" || *spansOut != "" || *metricsOut != ""
	if needProf || *auditOut != "" || *baseline != "" {
		if *exp != "smp" {
			fmt.Fprintln(os.Stderr, "ckibench: -trace-out/-spans-out/-metrics-out/-audit-out/-baseline require -exp smp")
			os.Exit(2)
		}
		if needProf && *auditOut != "" {
			fmt.Fprintln(os.Stderr, "ckibench: -audit-out cannot be combined with the span/metrics artifact flags")
			os.Exit(2)
		}
		var rep *bench.SMPReport
		switch {
		case needProf:
			prof, err := bench.RunSMPProfiled(*scale, bench.SMPSeed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
			if *traceOut != "" {
				writeFile(*traceOut, prof.ChromeJSON())
			}
			if *spansOut != "" {
				b, err := prof.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
					os.Exit(1)
				}
				writeFile(*spansOut, append(b, '\n'))
			}
			if *metricsOut != "" {
				b, err := prof.MetricsJSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
					os.Exit(1)
				}
				writeFile(*metricsOut, append(b, '\n'))
			}
			rep = prof.Report
		case *auditOut != "":
			rec := audit.NewRecorder(nil)
			var err error
			rep, err = bench.RunSMPAudited(*scale, bench.SMPSeed, rec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
			if err := rec.WriteFile(*auditOut); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: %v\n", err)
				os.Exit(1)
			}
		default:
			var err error
			rep, err = bench.RunSMP(*scale, bench.SMPSeed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
		}
		// The report is byte-identical however it was produced (the
		// observers are clock-neutral), so the usual outputs remain
		// available in the same invocation.
		if *jsonOut {
			if err := bench.WriteSMPReportJSON(rep, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
				os.Exit(1)
			}
		} else if err := bench.WriteSMPTable(rep, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: smp: %v\n", err)
			os.Exit(1)
		}
		if *baseline != "" {
			gateBaseline(*baseline, rep)
		}
		return
	}

	if *jsonOut {
		var emit func(int, io.Writer) error
		switch *exp {
		case "chaos":
			emit = bench.ChaosJSON
		case "smp":
			emit = bench.SMPJSON
		default:
			fmt.Fprintln(os.Stderr, "ckibench: -json is only supported with -exp chaos or -exp smp")
			os.Exit(2)
		}
		if err := emit(*scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}

	everything := append(bench.All(), bench.Extensions()...)
	if *list {
		for _, e := range everything {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := func(e bench.Experiment) {
		fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
		if err := e.Run(*scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ckibench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if *exp != "" {
		for _, e := range everything {
			if e.ID == *exp {
				run(e)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "ckibench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	for _, e := range everything {
		run(e)
	}
}
