package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidate covers every usage-error rule: flag combinations that
// used to be silently ignored must now be rejected (exit 2 in main).
func TestValidate(t *testing.T) {
	ok := func(c config) config {
		if c.parallel == 0 {
			c.parallel = 1
		}
		if c.seeds == 0 {
			c.seeds = 1
		}
		if c.interval == 0 {
			c.interval = 1
		}
		return c
	}
	cases := []struct {
		name    string
		cfg     config
		wantErr bool
	}{
		{"defaults", ok(config{}), false},
		{"smp json", ok(config{exp: "smp", jsonOut: true}), false},
		{"chaos json", ok(config{exp: "chaos", jsonOut: true}), false},
		{"wallclock json", ok(config{exp: "wallclock", jsonOut: true}), false},
		{"smp artifacts", ok(config{exp: "smp", traceOut: "t.json", spansOut: "s.json", metricsOut: "m.json"}), false},
		{"smp audit", ok(config{exp: "smp", auditOut: "a.log"}), false},
		{"smp baseline", ok(config{exp: "smp", baseline: "b.json"}), false},
		{"chaos sweep", ok(config{exp: "chaos", jsonOut: true, seeds: 16}), false},
		{"parallel 8", ok(config{exp: "smp", jsonOut: true, parallel: 8}), false},
		{"snapshot json", ok(config{exp: "snapshot", jsonOut: true}), false},
		{"snapshot blob out", ok(config{exp: "snapshot", snapOut: "cki.snap"}), false},
		{"snapshot interval", ok(config{exp: "snapshot", interval: 5}), false},
		{"fleet json", ok(config{exp: "fleet", jsonOut: true}), false},
		{"fleet nodes", ok(config{exp: "fleet", nodes: 8}), false},
		{"fleet sched binpack", ok(config{exp: "fleet", sched: "binpack"}), false},
		{"fleet sched spread", ok(config{exp: "fleet", sched: "spread"}), false},
		{"fleet arrival rate", ok(config{exp: "fleet", arrival: 50_000}), false},
		{"fleet trace file", ok(config{exp: "fleet", traceFile: "rates.trace"}), false},
		{"fleet everything", ok(config{exp: "fleet", jsonOut: true, nodes: 8, sched: "spread", arrival: 1000, parallel: 8}), false},
		{"slo json", ok(config{exp: "slo", jsonOut: true}), false},
		{"slo nodes", ok(config{exp: "slo", nodes: 10}), false},
		{"slo scrape interval", ok(config{exp: "slo", scrapeIv: "250us"}), false},
		{"slo scrape interval bare ps", ok(config{exp: "slo", scrapeIv: "2500000"}), false},
		{"slo outputs", ok(config{exp: "slo", jsonOut: true, sloOut: "tl", bundleOut: "bd"}), false},
		{"fleet scrape interval", ok(config{exp: "fleet", scrapeIv: "1.5ms"}), false},
		{"fleet timeline", ok(config{exp: "fleet", scrapeIv: "50us", sloOut: "tl.ckits"}), false},
		{"tail json", ok(config{exp: "tail", jsonOut: true}), false},
		{"tail nodes", ok(config{exp: "tail", nodes: 8}), false},
		{"tail parallel", ok(config{exp: "tail", jsonOut: true, parallel: 8}), false},
		{"serverless json", ok(config{exp: "serverless", jsonOut: true}), false},
		{"serverless nodes", ok(config{exp: "serverless", nodes: 8}), false},
		{"serverless fork-mode", ok(config{exp: "serverless", forkMode: "lazy"}), false},
		{"serverless churn-rate", ok(config{exp: "serverless", churnRate: 30_000}), false},
		{"serverless everything", ok(config{exp: "serverless", jsonOut: true, nodes: 8, forkMode: "cow", churnRate: 5000, parallel: 8}), false},

		{"parallel 0", config{parallel: 0, seeds: 1}, true},
		{"parallel negative", config{parallel: -2, seeds: 1}, true},
		{"seeds 0", config{parallel: 1, seeds: 0}, true},
		{"trace-out without smp", ok(config{traceOut: "t.json"}), true},
		{"spans-out wrong exp", ok(config{exp: "chaos", spansOut: "s.json"}), true},
		{"metrics-out wrong exp", ok(config{exp: "fig12", metricsOut: "m.json"}), true},
		{"audit-out without smp", ok(config{auditOut: "a.log"}), true},
		{"baseline without smp", ok(config{exp: "chaos", baseline: "b.json"}), true},
		{"audit-out with prof flags", ok(config{exp: "smp", traceOut: "t.json", auditOut: "a.log"}), true},
		{"seeds without chaos", ok(config{exp: "smp", jsonOut: true, seeds: 4}), true},
		{"seeds without json", ok(config{exp: "chaos", seeds: 4}), true},
		{"json wrong exp", ok(config{exp: "fig12", jsonOut: true}), true},
		{"json all experiments", ok(config{jsonOut: true}), true},
		{"interval 0", config{parallel: 1, seeds: 1, interval: 0, exp: "snapshot"}, true},
		{"interval negative", config{parallel: 1, seeds: 1, interval: -3, exp: "snapshot"}, true},
		{"snap-out wrong exp", ok(config{exp: "chaos", snapOut: "cki.snap"}), true},
		{"snap-out without exp", ok(config{snapOut: "cki.snap"}), true},
		{"interval wrong exp", ok(config{exp: "smp", jsonOut: true, interval: 4}), true},
		{"nodes without fleet", ok(config{nodes: 8}), true},
		{"nodes wrong exp", ok(config{exp: "smp", nodes: 8}), true},
		{"nodes negative", ok(config{exp: "fleet", nodes: -1}), true},
		{"sched without fleet", ok(config{sched: "spread"}), true},
		{"sched unknown", ok(config{exp: "fleet", sched: "random"}), true},
		{"arrival-rate without fleet", ok(config{arrival: 1000}), true},
		{"arrival-rate wrong exp", ok(config{exp: "chaos", arrival: 1000}), true},
		{"arrival-rate negative", ok(config{exp: "fleet", arrival: -5}), true},
		{"trace-file without fleet", ok(config{traceFile: "rates.trace"}), true},
		{"trace-file wrong exp", ok(config{exp: "snapshot", traceFile: "rates.trace"}), true},
		{"arrival-rate with trace-file", ok(config{exp: "fleet", arrival: 1000, traceFile: "rates.trace"}), true},
		{"scrape-interval wrong exp", ok(config{exp: "smp", jsonOut: true, scrapeIv: "50us"}), true},
		{"scrape-interval without exp", ok(config{scrapeIv: "50us"}), true},
		{"scrape-interval unparseable", ok(config{exp: "slo", scrapeIv: "fast"}), true},
		{"scrape-interval zero", ok(config{exp: "slo", scrapeIv: "0"}), true},
		{"slo-out wrong exp", ok(config{exp: "chaos", sloOut: "tl"}), true},
		{"slo-out fleet without interval", ok(config{exp: "fleet", sloOut: "tl.ckits"}), true},
		{"bundle-out wrong exp", ok(config{exp: "fleet", scrapeIv: "50us", bundleOut: "bd"}), true},
		{"nodes slo negative", ok(config{exp: "slo", nodes: -1}), true},
		{"tail with sched", ok(config{exp: "tail", sched: "spread"}), true},
		{"tail with arrival-rate", ok(config{exp: "tail", arrival: 1000}), true},
		{"tail with trace-file", ok(config{exp: "tail", traceFile: "rates.trace"}), true},
		{"tail with scrape-interval", ok(config{exp: "tail", scrapeIv: "50us"}), true},
		{"tail with slo-out", ok(config{exp: "tail", sloOut: "tl"}), true},
		{"tail with snap-out", ok(config{exp: "tail", snapOut: "cki.snap"}), true},
		{"tail nodes negative", ok(config{exp: "tail", nodes: -1}), true},
		{"churn-rate without serverless", ok(config{churnRate: 5000}), true},
		{"churn-rate wrong exp", ok(config{exp: "fleet", churnRate: 5000}), true},
		{"churn-rate negative", ok(config{exp: "serverless", churnRate: -5}), true},
		{"fork-mode without serverless", ok(config{forkMode: "lazy"}), true},
		{"fork-mode wrong exp", ok(config{exp: "tail", forkMode: "lazy"}), true},
		{"fork-mode unknown", ok(config{exp: "serverless", forkMode: "warm"}), true},
		{"serverless with sched", ok(config{exp: "serverless", sched: "spread"}), true},
		{"serverless with arrival-rate", ok(config{exp: "serverless", arrival: 1000}), true},
		{"serverless with scrape-interval", ok(config{exp: "serverless", scrapeIv: "50us"}), true},
		{"serverless nodes negative", ok(config{exp: "serverless", nodes: -1}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Errorf("validate(%+v) = %v, wantErr=%v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

var binPath string

// TestMain builds the real binary once: exit codes are asserted
// against it directly, because `go run` collapses every failure to
// exit 1 and would mask usage errors (2) as runtime errors (1).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ckibench-bin")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "ckibench")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("go build: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestExitCodes pins the exit-code contract against the built binary:
// 2 for usage errors (validate failures, unknown experiments), 0 for
// the cheap informational modes.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"list", []string{"-list"}, 0, "serverless"},
		{"unknown exp", []string{"-exp", "warpdrive"}, 2, "unknown experiment"},
		{"parallel zero", []string{"-parallel", "0", "-list"}, 2, "-parallel must be"},
		{"tail with sched", []string{"-exp", "tail", "-sched", "spread"}, 2, "require -exp fleet"},
		{"tail with scrape-interval", []string{"-exp", "tail", "-scrape-interval", "50us"}, 2, "-scrape-interval requires"},
		{"nodes wrong exp", []string{"-exp", "smp", "-nodes", "4"}, 2, "-nodes requires"},
		{"json wrong exp", []string{"-exp", "ext-pku", "-json"}, 2, "-json is only supported"},
		{"fork-mode wrong exp", []string{"-exp", "smp", "-fork-mode", "lazy"}, 2, "require -exp serverless"},
		{"churn-rate negative", []string{"-exp", "serverless", "-churn-rate", "-5"}, 2, "-churn-rate must be"},
		{"fork-mode unknown", []string{"-exp", "serverless", "-fork-mode", "warm"}, 2, "-fork-mode must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(binPath, tc.args...).CombinedOutput()
			code := 0
			if err != nil {
				ee, ok := err.(*exec.ExitError)
				if !ok {
					t.Fatalf("ckibench %v: %v", tc.args, err)
				}
				code = ee.ExitCode()
			}
			if code != tc.code {
				t.Fatalf("exit = %d, want %d; output:\n%s", code, tc.code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}
