package main

import "testing"

// TestValidate covers every usage-error rule: flag combinations that
// used to be silently ignored must now be rejected (exit 2 in main).
func TestValidate(t *testing.T) {
	ok := func(c config) config {
		if c.parallel == 0 {
			c.parallel = 1
		}
		if c.seeds == 0 {
			c.seeds = 1
		}
		if c.interval == 0 {
			c.interval = 1
		}
		return c
	}
	cases := []struct {
		name    string
		cfg     config
		wantErr bool
	}{
		{"defaults", ok(config{}), false},
		{"smp json", ok(config{exp: "smp", jsonOut: true}), false},
		{"chaos json", ok(config{exp: "chaos", jsonOut: true}), false},
		{"wallclock json", ok(config{exp: "wallclock", jsonOut: true}), false},
		{"smp artifacts", ok(config{exp: "smp", traceOut: "t.json", spansOut: "s.json", metricsOut: "m.json"}), false},
		{"smp audit", ok(config{exp: "smp", auditOut: "a.log"}), false},
		{"smp baseline", ok(config{exp: "smp", baseline: "b.json"}), false},
		{"chaos sweep", ok(config{exp: "chaos", jsonOut: true, seeds: 16}), false},
		{"parallel 8", ok(config{exp: "smp", jsonOut: true, parallel: 8}), false},
		{"snapshot json", ok(config{exp: "snapshot", jsonOut: true}), false},
		{"snapshot blob out", ok(config{exp: "snapshot", snapOut: "cki.snap"}), false},
		{"snapshot interval", ok(config{exp: "snapshot", interval: 5}), false},

		{"parallel 0", config{parallel: 0, seeds: 1}, true},
		{"parallel negative", config{parallel: -2, seeds: 1}, true},
		{"seeds 0", config{parallel: 1, seeds: 0}, true},
		{"trace-out without smp", ok(config{traceOut: "t.json"}), true},
		{"spans-out wrong exp", ok(config{exp: "chaos", spansOut: "s.json"}), true},
		{"metrics-out wrong exp", ok(config{exp: "fig12", metricsOut: "m.json"}), true},
		{"audit-out without smp", ok(config{auditOut: "a.log"}), true},
		{"baseline without smp", ok(config{exp: "chaos", baseline: "b.json"}), true},
		{"audit-out with prof flags", ok(config{exp: "smp", traceOut: "t.json", auditOut: "a.log"}), true},
		{"seeds without chaos", ok(config{exp: "smp", jsonOut: true, seeds: 4}), true},
		{"seeds without json", ok(config{exp: "chaos", seeds: 4}), true},
		{"json wrong exp", ok(config{exp: "fig12", jsonOut: true}), true},
		{"json all experiments", ok(config{jsonOut: true}), true},
		{"interval 0", config{parallel: 1, seeds: 1, interval: 0, exp: "snapshot"}, true},
		{"interval negative", config{parallel: 1, seeds: 1, interval: -3, exp: "snapshot"}, true},
		{"snap-out wrong exp", ok(config{exp: "chaos", snapOut: "cki.snap"}), true},
		{"snap-out without exp", ok(config{snapOut: "cki.snap"}), true},
		{"interval wrong exp", ok(config{exp: "smp", jsonOut: true, interval: 4}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Errorf("validate(%+v) = %v, wantErr=%v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}
