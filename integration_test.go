package repro

// End-to-end integration: one scenario that crosses every layer — boot
// all runtimes, run a mixed workload (files, memory, processes, network,
// preemption), verify identical semantics, and check that the virtual
// times land in the order the paper's evaluation establishes.

import (
	"errors"
	"testing"

	"repro/internal/backends"
	"repro/internal/clock"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/trace"
)

// mixedWorkload runs the same program on any container and returns the
// virtual time it took.
func mixedWorkload(t *testing.T, c *backends.Container) clock.Time {
	t.Helper()
	k := c.K
	start := c.Clk.Now()

	// Filesystem phase.
	if err := k.Mkdir("/app"); err != nil {
		t.Fatal(err)
	}
	fd, err := k.OpenAt("/app/store.db", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := k.Pwrite(fd, make([]byte, 256), uint64(i)*256); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Fsync(fd); err != nil {
		t.Fatal(err)
	}

	// Memory phase: demand paging + protection churn.
	addr, err := k.MmapCall(96*mem.PageSize, guest.ProtRead|guest.ProtWrite, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.TouchRange(addr, 96*mem.PageSize, mmu.Write); err != nil {
		t.Fatal(err)
	}
	if err := k.MprotectCall(addr, 16*mem.PageSize, guest.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := k.Touch(addr, mmu.Write); !errors.Is(err, guest.EFAULT) {
		t.Fatalf("protection not enforced: %v", err)
	}

	// Process phase: COW fork + preemptive round robin.
	child, err := k.ForkCOW()
	if err != nil {
		t.Fatal(err)
	}
	k.EnablePreemption(80 * clock.Microsecond)
	for i := 0; i < 12; i++ {
		k.Compute(30 * clock.Microsecond)
		if err := k.Touch(addr+32*mem.PageSize, mmu.Write); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.SwitchToPID(child); err != nil {
		t.Fatal(err)
	}
	if err := k.Exit(0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Wait(); err != nil {
		t.Fatal(err)
	}

	// Network phase: a few request/response rounds over virtio.
	srvFD, ext, err := k.ExternalConn(func() {
		if err := c.VirtioKick(); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.DeliverVirtIRQ()
		ext.Send([]byte("req"))
		if _, err := k.Read(srvFD, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(srvFD, []byte("resp")); err != nil {
			t.Fatal(err)
		}
		if _, ok := ext.Recv(); !ok {
			t.Fatal("response lost")
		}
	}
	return c.Clk.Now() - start
}

func TestIntegrationAllRuntimes(t *testing.T) {
	times := map[string]clock.Time{}
	for _, cfg := range append(backends.AllKinds(), struct {
		Kind backends.Kind
		Opts backends.Options
	}{backends.GVisor, backends.Options{}}) {
		c := backends.MustNew(cfg.Kind, cfg.Opts)
		c.K.Trace = trace.New(1 << 12)
		times[c.Name] = mixedWorkload(t, c)
		// Sanity on the recorded timeline.
		if sum := c.K.Trace.Summary(); sum[trace.PageFault].Count == 0 || sum[trace.Syscall].Count == 0 {
			t.Errorf("%s: timeline incomplete: %v", c.Name, sum)
		}
		// CKI containers must have clean KSM ledgers after all of this.
		if ksm, _, _, ok := c.CKIInternals(); ok && ksm.Stats.Rejections != 0 {
			t.Errorf("%s: %d KSM rejections in a legal workload", c.Name, ksm.Stats.Rejections)
		}
	}
	// The evaluation's ordering, end to end on a mixed workload.
	if !(times["CKI-BM"] < times["PVM-BM"] && times["PVM-BM"] < times["HVM-NST"]) {
		t.Errorf("ordering violated: %v", times)
	}
	if times["HVM-NST"] < 2*times["CKI-BM"] {
		t.Errorf("nested HVM too close to CKI: %v", times)
	}
	if r := float64(times["CKI-BM"]) / float64(times["RunC"]); r > 1.6 {
		t.Errorf("CKI/RunC = %.2f on mixed workload, want < 1.6 (I/O phase dominates the gap)", r)
	}
}
