package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation. Wall-clock ns/op measures the simulator itself; the
// numbers that reproduce the paper are the reported custom metrics:
// simns/op (virtual nanoseconds per operation), ops/simsec, and the
// per-runtime counters. Run:
//
//	go test -bench=. -benchmem
//
// and compare the simns/op columns against EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/backends"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/cve"
	"repro/internal/des"
	"repro/internal/workloads"
)

// runtimeConfigs is the standard comparison set.
var runtimeConfigs = []struct {
	name string
	kind backends.Kind
	opts backends.Options
}{
	{"RunC", backends.RunC, backends.Options{}},
	{"HVM-BM", backends.HVM, backends.Options{}},
	{"HVM-NST", backends.HVM, backends.Options{Nested: true}},
	{"PVM-BM", backends.PVM, backends.Options{}},
	{"PVM-NST", backends.PVM, backends.Options{Nested: true}},
	{"CKI", backends.CKI, backends.Options{}},
}

// BenchmarkTable2Syscall measures the getpid row of Table 2 (plus the
// Fig. 10b ablations).
func BenchmarkTable2Syscall(b *testing.B) {
	cfgs := append(runtimeConfigs[:len(runtimeConfigs):len(runtimeConfigs)],
		struct {
			name string
			kind backends.Kind
			opts backends.Options
		}{"CKI-wo-OPT2", backends.CKI, backends.Options{WoOPT2: true}},
		struct {
			name string
			kind backends.Kind
			opts backends.Options
		}{"CKI-wo-OPT3", backends.CKI, backends.Options{WoOPT3: true}},
	)
	for _, cfg := range cfgs {
		b.Run(cfg.name, func(b *testing.B) {
			c := backends.MustNew(cfg.kind, cfg.opts)
			start := c.Clk.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.K.Getpid()
			}
			b.StopTimer()
			report(b, c.Clk.Now()-start, b.N)
		})
	}
}

// BenchmarkTable2PageFault measures the pgfault row (file-backed).
func BenchmarkTable2PageFault(b *testing.B) {
	for _, cfg := range runtimeConfigs {
		b.Run(cfg.name, func(b *testing.B) {
			var total clock.Time
			n := 0
			for i := 0; i < b.N; i++ {
				c := backends.MustNew(cfg.kind, cfg.opts)
				v, err := c.MeasureFileFault(64)
				if err != nil {
					b.Fatal(err)
				}
				total += v
				n++
			}
			report(b, total, n)
		})
	}
}

// BenchmarkFig10aAnonFault measures the anonymous-fault flow.
func BenchmarkFig10aAnonFault(b *testing.B) {
	for _, cfg := range runtimeConfigs {
		b.Run(cfg.name, func(b *testing.B) {
			var total clock.Time
			n := 0
			for i := 0; i < b.N; i++ {
				c := backends.MustNew(cfg.kind, cfg.opts)
				v, err := c.MeasureAnonFault(64)
				if err != nil {
					b.Fatal(err)
				}
				total += v
				n++
			}
			report(b, total, n)
		})
	}
}

// BenchmarkTable2Hypercall measures the hypercall row.
func BenchmarkTable2Hypercall(b *testing.B) {
	for _, cfg := range runtimeConfigs {
		if cfg.kind == backends.RunC {
			continue
		}
		b.Run(cfg.name, func(b *testing.B) {
			c := backends.MustNew(cfg.kind, cfg.opts)
			var total clock.Time
			for i := 0; i < b.N; i++ {
				v, err := c.MeasureHypercall()
				if err != nil {
					b.Fatal(err)
				}
				total += v
			}
			report(b, total, b.N)
		})
	}
}

// benchRunner runs a workload Runner once per iteration and reports
// virtual time per application operation.
func benchRunner(b *testing.B, r workloads.Runner, kind backends.Kind, opts backends.Options) {
	b.Helper()
	var total clock.Time
	ops := 0
	for i := 0; i < b.N; i++ {
		c := backends.MustNew(kind, opts)
		res, err := r.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Time
		ops += res.Ops
	}
	report(b, total, ops)
}

// BenchmarkFig12MemApps covers Figures 4 and 12.
func BenchmarkFig12MemApps(b *testing.B) {
	for _, app := range workloads.Fig12Apps(1) {
		for _, cfg := range runtimeConfigs {
			b.Run(app.AppName+"/"+cfg.name, func(b *testing.B) {
				benchRunner(b, app, cfg.kind, cfg.opts)
			})
		}
	}
}

// BenchmarkFig13Sweeps covers the overhead sweeps.
func BenchmarkFig13Sweeps(b *testing.B) {
	for _, ratio := range []int{0, 4, 16} {
		app := workloads.BTreeSweep{Inserts: 150, Ratio: ratio}
		for _, cfg := range runtimeConfigs {
			b.Run(fmt.Sprintf("btree-r%d/%s", ratio, cfg.name), func(b *testing.B) {
				benchRunner(b, app, cfg.kind, cfg.opts)
			})
		}
	}
}

// BenchmarkTable4TLB covers GUPS and BTree-Lookup.
func BenchmarkTable4TLB(b *testing.B) {
	for _, app := range workloads.Table4Apps(1) {
		for _, cfg := range runtimeConfigs {
			if cfg.opts.Nested {
				continue // Table 4 is bare-metal
			}
			b.Run(app.Name()+"/"+cfg.name, func(b *testing.B) {
				benchRunner(b, app, cfg.kind, cfg.opts)
			})
		}
	}
}

// BenchmarkFig11Lmbench covers the lmbench rows.
func BenchmarkFig11Lmbench(b *testing.B) {
	for _, lc := range workloads.LMBenchCases(1) {
		for _, cfg := range runtimeConfigs {
			if cfg.opts.Nested {
				continue // Fig. 11 is bare-metal
			}
			b.Run(lc.CaseName+"/"+cfg.name, func(b *testing.B) {
				benchRunner(b, lc, cfg.kind, cfg.opts)
			})
		}
	}
}

// BenchmarkFig14SQLite covers the sqlite-bench cases (and the Fig. 15
// ablations via the CKI-wo-OPT runtimes).
func BenchmarkFig14SQLite(b *testing.B) {
	cfgs := []struct {
		name string
		kind backends.Kind
		opts backends.Options
	}{
		{"RunC", backends.RunC, backends.Options{}},
		{"HVM", backends.HVM, backends.Options{}},
		{"PVM", backends.PVM, backends.Options{}},
		{"CKI", backends.CKI, backends.Options{}},
		{"CKI-wo-OPT2", backends.CKI, backends.Options{WoOPT2: true}},
		{"CKI-wo-OPT3", backends.CKI, backends.Options{WoOPT3: true}},
	}
	for _, sc := range workloads.Fig14Cases(1) {
		for _, cfg := range cfgs {
			b.Run(sc.CaseName+"/"+cfg.name, func(b *testing.B) {
				benchRunner(b, sc, cfg.kind, cfg.opts)
			})
		}
	}
}

// BenchmarkFig5IOApps covers the I/O-intensive servers.
func BenchmarkFig5IOApps(b *testing.B) {
	for _, app := range workloads.Fig5Apps(1) {
		for _, cfg := range runtimeConfigs {
			b.Run(app.AppName+"/"+cfg.name, func(b *testing.B) {
				benchRunner(b, app, cfg.kind, cfg.opts)
			})
		}
	}
}

// BenchmarkFig16KV reports saturated closed-loop throughput.
func BenchmarkFig16KV(b *testing.B) {
	apps := []struct {
		app     workloads.KVApp
		workers int
	}{
		{workloads.Memcached(48), 4},
		{workloads.Redis(48), 1},
	}
	for _, a := range apps {
		for _, cfg := range runtimeConfigs {
			if cfg.kind == backends.RunC {
				continue
			}
			b.Run(a.app.AppName+"/"+cfg.name, func(b *testing.B) {
				var ops float64
				for i := 0; i < b.N; i++ {
					model, err := bench.ServiceModelFor(a.app, cfg.kind, cfg.opts)
					if err != nil {
						b.Fatal(err)
					}
					ops, _ = des.ClosedLoop{
						Clients: 128, Workers: a.workers,
						RTT:     40 * clock.Microsecond,
						Service: model,
						Horizon: 20 * clock.Millisecond,
					}.Throughput()
				}
				b.ReportMetric(ops/1000, "k-ops/simsec")
			})
		}
	}
}

// BenchmarkFig2CVE measures the classification pass itself.
func BenchmarkFig2CVE(b *testing.B) {
	ds := cve.Dataset()
	for i := 0; i < b.N; i++ {
		s := cve.Summarize(ds)
		if s.Total != 209 {
			b.Fatal("bad dataset")
		}
	}
}

// BenchmarkTable3Matrix measures the blocking-matrix regeneration.
func BenchmarkTable3Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Tab3(1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Matrix regenerates the comparison table.
func BenchmarkTable5Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Tab5(1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// report emits the virtual-time metrics next to Go's wall-clock ns/op.
func report(b *testing.B, total clock.Time, ops int) {
	b.Helper()
	if ops == 0 {
		return
	}
	per := float64(total) / float64(ops) / 1000 // ps → ns
	b.ReportMetric(per, "simns/op")
	if total > 0 {
		b.ReportMetric(float64(ops)/total.Seconds(), "ops/simsec")
	}
}
