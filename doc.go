// Package repro is a full reproduction, in pure Go, of "A Hardware-
// Software Co-Design for Efficient Secure Containers" (CKI, EuroSys
// 2025): a deterministic machine simulator with the paper's PKS
// hardware extensions, the CKI runtime (kernel security monitor, PKS
// switch gates, interrupt-abuse defences), the RunC/HVM/PVM baselines,
// the guest-kernel substrate they all run on, and a benchmark harness
// that regenerates every table and figure of the paper's evaluation.
//
// Start with README.md, DESIGN.md (system inventory and experiment
// index) and EXPERIMENTS.md (paper-vs-measured record). The runnable
// entry points are:
//
//	cmd/ckibench   – regenerate the paper's tables and figures
//	cmd/ckirun     – run one workload on one container runtime
//	cmd/ckitrace   – print per-flow cost decompositions
//	examples/...   – quickstart, nested cloud, KV store, attack sim
//
// The root package contains no code: the library lives under internal/
// (this repository is a self-contained research artifact; the examples
// and commands are its public surface), and bench_test.go holds the
// testing.B benchmarks, one per table and figure.
package repro
